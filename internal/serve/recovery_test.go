package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"waferscale/internal/store"
)

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	st.SetFsync(false)
	return st
}

func openJournalT(t *testing.T, path string) (*store.Journal, []store.LiveJob) {
	t.Helper()
	j, live, err := store.OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	j.SetFsync(false)
	t.Cleanup(func() { j.Close() })
	return j, live
}

// TestPanicIsolation: a panicking analysis fails its own job with the
// captured stack; the daemon stays up, healthy, and able to run the
// next job.
func TestPanicIsolation(t *testing.T) {
	h := &testHarness{}
	h.srv = New(Config{Slots: 1})
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		if sp.Kind == "droop" {
			panic("injected fault: nil deref in analysis")
		}
		return map[string]string{"ok": "1"}, nil
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() { h.ts.Close(); h.srv.Close() })

	_, j, _ := h.post(t, `{"kind":"droop"}`)
	got := h.waitState(t, j.ID, "failed")
	if !strings.Contains(got.Error, "panic: injected fault") {
		t.Fatalf("failed job error = %q, want captured panic", got.Error)
	}
	if !strings.Contains(got.Error, "runIsolated") && !strings.Contains(got.Error, ".go:") {
		t.Fatalf("failed job error carries no stack: %q", got.Error)
	}

	// The daemon survived: healthz is 200 and the next job completes.
	if code, _ := h.get(t, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after panic: HTTP %d", code)
	}
	_, j2, _ := h.post(t, `{"kind":"dse"}`)
	h.waitState(t, j2.ID, "done")
	st := h.stats(t)
	if st.Panics != 1 {
		t.Fatalf("panics=%d want 1", st.Panics)
	}
	if st.BudgetFree != st.BudgetTotal {
		t.Fatalf("budget leak after panic: free=%d total=%d", st.BudgetFree, st.BudgetTotal)
	}
}

// TestWatchdogRetriesStalledJob: a job that stops emitting progress is
// canceled by the watchdog and retried; the retry succeeds.
func TestWatchdogRetriesStalledJob(t *testing.T) {
	var attempts atomic.Int64
	h := &testHarness{}
	h.srv = New(Config{
		Slots:        1,
		StallTimeout: 80 * time.Millisecond,
		StallPoll:    10 * time.Millisecond,
		StallRetries: 2,
		RetryBackoff: 10 * time.Millisecond,
	})
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		if attempts.Add(1) == 1 {
			<-ctx.Done() // first attempt hangs silently, no progress
			return nil, ctx.Err()
		}
		return map[string]string{"ok": "1"}, nil
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() { h.ts.Close(); h.srv.Close() })

	_, j, _ := h.post(t, `{"kind":"droop"}`)
	got := h.waitState(t, j.ID, "done")
	if got.State != "done" {
		t.Fatalf("job = %+v", got)
	}
	if n := attempts.Load(); n != 2 {
		t.Fatalf("attempts=%d want 2 (stall + successful retry)", n)
	}
	st := h.stats(t)
	if st.Stalls != 1 || st.StallRequeues != 1 {
		t.Fatalf("stalls=%d requeues=%d want 1/1", st.Stalls, st.StallRequeues)
	}
	// The wire status records the re-run.
	_, body := h.get(t, "/v1/jobs/"+j.ID)
	var ws struct {
		Attempts int `json:"attempts"`
	}
	json.Unmarshal(body, &ws)
	if ws.Attempts != 1 {
		t.Fatalf("attempts on wire = %d want 1", ws.Attempts)
	}
}

// TestWatchdogGivesUpAfterRetries: a permanently stuck job fails with
// a stall error after the bounded retries, freeing its slot.
func TestWatchdogGivesUpAfterRetries(t *testing.T) {
	h := &testHarness{}
	h.srv = New(Config{
		Slots:        1,
		StallTimeout: 50 * time.Millisecond,
		StallPoll:    10 * time.Millisecond,
		StallRetries: 1,
		RetryBackoff: 10 * time.Millisecond,
	})
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() { h.ts.Close(); h.srv.Close() })

	_, j, _ := h.post(t, `{"kind":"droop"}`)
	got := h.waitState(t, j.ID, "failed")
	if !strings.Contains(got.Error, "stalled") {
		t.Fatalf("error = %q, want stall diagnosis", got.Error)
	}
	// Slot is free: an ordinary job still runs (swap in a working fn).
	h.srv.mu.Lock()
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		return map[string]string{"ok": "1"}, nil
	}
	h.srv.mu.Unlock()
	_, j2, _ := h.post(t, `{"kind":"dse"}`)
	h.waitState(t, j2.ID, "done")
}

// TestWatchdogSparesProgressingJobs: steady progress events keep a
// slow job alive well past StallTimeout.
func TestWatchdogSparesProgressingJobs(t *testing.T) {
	h := &testHarness{}
	h.srv = New(Config{
		Slots:        1,
		StallTimeout: 60 * time.Millisecond,
		StallPoll:    10 * time.Millisecond,
	})
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		for i := 0; i < 10; i++ { // 200ms total, > 3x the stall timeout
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(20 * time.Millisecond):
			}
			emit(Event{Stage: "trials", Done: int64(i + 1), Total: 10})
		}
		return map[string]string{"ok": "1"}, nil
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() { h.ts.Close(); h.srv.Close() })

	_, j, _ := h.post(t, `{"kind":"droop"}`)
	h.waitState(t, j.ID, "done")
	if st := h.stats(t); st.Stalls != 0 {
		t.Fatalf("stalls=%d want 0 for a progressing job", st.Stalls)
	}
}

// TestDiskStoreServesAcrossRestart: a result computed by one server
// generation is served as a cache hit by the next (fresh memory LRU,
// same disk store), checksum-verified.
func TestDiskStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ds := openStoreT(t, dir)

	h := &testHarness{}
	h.srv = New(Config{Slots: 1, Store: ds})
	h.ts = httptest.NewServer(h.srv.Handler())
	_, j, _ := h.post(t, `{"kind":"droop","droop":{"side":4}}`)
	h.waitState(t, j.ID, "done")
	h.ts.Close()
	h.srv.Close()

	// "Restart": a brand-new server over a re-opened store.
	ds2 := openStoreT(t, dir)
	h2 := &testHarness{}
	h2.srv = New(Config{Slots: 1, Store: ds2})
	h2.ts = httptest.NewServer(h2.srv.Handler())
	t.Cleanup(func() { h2.ts.Close(); h2.srv.Close() })

	code, j2, _ := h2.post(t, `{"kind":"droop","droop":{"side":4}}`)
	if code != http.StatusOK || !j2.Cached || j2.State != "done" {
		t.Fatalf("restarted server did not serve from disk: HTTP %d %+v", code, j2)
	}
	st := h2.stats(t)
	if st.Executed != 0 {
		t.Fatalf("executed=%d want 0 (disk hit must not recompute)", st.Executed)
	}
	if st.Store == nil || st.Store.Hits != 1 {
		t.Fatalf("store stats %+v, want 1 hit", st.Store)
	}
	// Result payload is intact end to end.
	var res DroopResult
	if err := json.Unmarshal(j2.Result, &res); err != nil || res.MinVolt <= 0 {
		_, body := h2.get(t, "/v1/jobs/"+j2.ID+"/result")
		if err := json.Unmarshal(body, &res); err != nil || res.MinVolt <= 0 {
			t.Fatalf("disk-served result implausible: %s", body)
		}
	}
}

// TestJournalRecoveryReruns is the unit-level kill -9: a journal left
// by a "crashed" process (authored directly) is replayed, the
// interrupted job re-runs to completion, and a second restart finds
// nothing live.
func TestJournalRecoveryReruns(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")

	// Generation 1 "crashes" with one accepted+started job on the log.
	spec := Spec{Kind: "droop", Droop: &DroopSpec{Side: 4}}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	specJSON, _ := json.Marshal(&spec)
	key := spec.CacheKey()
	g1, live := openJournalT(t, jpath)
	if len(live) != 0 {
		t.Fatalf("fresh journal live=%d", len(live))
	}
	g1.Append(store.Record{Op: store.OpAccepted, ID: "j1", Key: key, Priority: "high", Spec: specJSON})
	g1.Append(store.Record{Op: store.OpStarted, ID: "j1", Key: key})
	g1.Close()

	// Generation 2 recovers.
	ds := openStoreT(t, filepath.Join(dir, "store"))
	g2, live := openJournalT(t, jpath)
	if len(live) != 1 {
		t.Fatalf("live=%d want 1", len(live))
	}
	var ran atomic.Int64
	h := &testHarness{}
	h.srv = New(Config{Slots: 1, Store: ds, Journal: g2})
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		ran.Add(1)
		return map[string]string{"kind": sp.Kind}, nil
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() { h.ts.Close(); h.srv.Close() })

	// Not ready before recovery, ready after.
	if code, _ := h.get(t, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Recover: HTTP %d want 503", code)
	}
	rs := h.srv.Recover(live)
	if rs.Requeued != 1 || rs.Dropped != 0 || rs.FromStore != 0 {
		t.Fatalf("recovery stats %+v", rs)
	}
	if code, _ := h.get(t, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after Recover: HTTP %d want 200", code)
	}

	// The recovered job re-runs to completion under a fresh ID, keeping
	// its priority, and is marked recovered on the wire.
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ran.Load() != 1 {
		t.Fatal("recovered job never ran")
	}
	_, body := h.get(t, "/v1/jobs?state=done")
	var out struct {
		Jobs []struct {
			Recovered bool   `json:"recovered"`
			Priority  string `json:"priority"`
			Key       string `json:"key"`
			State     string `json:"state"`
		} `json:"jobs"`
	}
	for i := 0; i < 200; i++ {
		_, body = h.get(t, "/v1/jobs?state=done")
		json.Unmarshal(body, &out)
		if len(out.Jobs) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(out.Jobs) != 1 || !out.Jobs[0].Recovered || out.Jobs[0].Priority != "high" || out.Jobs[0].Key != key {
		t.Fatalf("recovered job on wire: %s", body)
	}

	// Generation 3: the completed run journaled a terminal record, so
	// nothing is live anymore.
	h.srv.Close()
	g2.Close()
	_, live = openJournalT(t, jpath)
	if len(live) != 0 {
		t.Fatalf("third generation still sees %d live jobs", len(live))
	}
}

// TestRecoverySkipsStoredResults: if the crash landed after the store
// write but before the journal's terminal record, recovery recognizes
// the durable result and closes the job out without recomputing.
func TestRecoverySkipsStoredResults(t *testing.T) {
	dir := t.TempDir()
	ds := openStoreT(t, filepath.Join(dir, "store"))
	spec := Spec{Kind: "dse"}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	specJSON, _ := json.Marshal(&spec)
	key := spec.CacheKey()
	if err := ds.Put(key, []byte(`{"arrayPoints":[]}`)); err != nil {
		t.Fatal(err)
	}
	jr, _ := openJournalT(t, filepath.Join(dir, "journal.jsonl"))

	var ran atomic.Int64
	srv := New(Config{Slots: 1, Store: ds, Journal: jr})
	srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		ran.Add(1)
		return nil, fmt.Errorf("must not run")
	}
	t.Cleanup(srv.Close)

	rs := srv.Recover([]store.LiveJob{{ID: "j9", Key: key, Spec: specJSON, WasRunning: true}})
	if rs.FromStore != 1 || rs.Requeued != 0 {
		t.Fatalf("recovery stats %+v, want fromStore=1", rs)
	}
	if ran.Load() != 0 {
		t.Fatal("stored result was recomputed")
	}
	// And the result is now a memory cache hit.
	if _, ok := srv.cache.Get(key); !ok {
		t.Fatal("stored result not promoted to memory cache")
	}
}

// TestRecoveryDropsUnreadableSpec: version skew (a spec that no longer
// normalizes) is dropped with a journaled failure, not a crash loop.
func TestRecoveryDropsUnreadableSpec(t *testing.T) {
	jr, _ := openJournalT(t, filepath.Join(t.TempDir(), "journal.jsonl"))
	srv := New(Config{Slots: 1, Journal: jr})
	t.Cleanup(srv.Close)
	rs := srv.Recover([]store.LiveJob{
		{ID: "ja", Key: "k1", Spec: json.RawMessage(`{"kind":"no-such-kind"}`)},
		{ID: "jb", Key: "k2", Spec: json.RawMessage(`not json`)},
	})
	if rs.Dropped != 2 || rs.Requeued != 0 {
		t.Fatalf("recovery stats %+v, want 2 dropped", rs)
	}
}

// TestRetryAfterScalesWithLoad: the 429 Retry-After grows with backlog
// and observed job duration instead of a fixed constant.
func TestRetryAfterScalesWithLoad(t *testing.T) {
	h := newHarness(t, Config{Slots: 1, QueueDepth: 1}, true)
	h.post(t, `{"kind":"dse"}`)
	h.waitStarted(t) // slot busy
	h.post(t, `{"kind":"droop"}`)

	// No history yet: 2s/job default, 1 running + 1 queued on 1 slot.
	code, _, hdr := h.post(t, `{"kind":"nocmc"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d want 429", code)
	}
	base := hdr.Get("Retry-After")
	if base != "4" {
		t.Fatalf("Retry-After=%q want 4 (2 jobs x 2s default / 1 slot)", base)
	}

	// Teach the estimator jobs take ~30s: the hint must grow.
	h.srv.mu.Lock()
	for i := 0; i < 8; i++ {
		h.srv.recordDurationLocked(30 * time.Second)
	}
	h.srv.mu.Unlock()
	_, _, hdr = h.post(t, `{"kind":"report"}`)
	if got := hdr.Get("Retry-After"); got != "60" {
		t.Fatalf("Retry-After=%q want 60 (2 jobs x 30s / 1 slot)", got)
	}
	close(h.release)
}

// TestRetryAfterZeroDurationRing: a ring full of zero (or sub-floor)
// durations — cache-warm jobs finishing faster than the clock resolves
// — must not collapse the estimate below the mean floor; the hint stays
// a sane positive value and still honours the 1s floor.
func TestRetryAfterZeroDurationRing(t *testing.T) {
	h := newHarness(t, Config{Slots: 1, QueueDepth: 1}, true)
	h.post(t, `{"kind":"dse"}`)
	h.waitStarted(t) // slot busy
	h.post(t, `{"kind":"droop"}`)

	// Fill the whole ring with zeros: the estimator has "history", all
	// of it useless. Before the mean floor this produced mean=0.
	h.srv.mu.Lock()
	for i := 0; i < len(h.srv.recentDur); i++ {
		h.srv.recordDurationLocked(0)
	}
	h.srv.mu.Unlock()
	code, _, hdr := h.post(t, `{"kind":"nocmc"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d want 429", code)
	}
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After=%q want 1 (zero-duration ring floors at minMeanJobDuration, clamps at 1s)", got)
	}

	// Sub-floor but non-zero means are floored too: 2 jobs on 1 slot at
	// the 100ms floor is 0.2s, ceil+clamp to 1 — never 0, never absent.
	h.srv.mu.Lock()
	for i := 0; i < len(h.srv.recentDur); i++ {
		h.srv.recordDurationLocked(time.Microsecond)
	}
	h.srv.mu.Unlock()
	_, _, hdr = h.post(t, `{"kind":"report"}`)
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After=%q want 1 for microsecond jobs", got)
	}
	close(h.release)
}

// TestCancelDuringBackoff: a client cancel while a stalled job waits
// out its retry backoff wins — the job never resurrects.
func TestCancelDuringBackoff(t *testing.T) {
	h := &testHarness{}
	h.srv = New(Config{
		Slots:        1,
		StallTimeout: 40 * time.Millisecond,
		StallPoll:    10 * time.Millisecond,
		StallRetries: 3,
		RetryBackoff: 2 * time.Second, // long enough to land the cancel inside it
	})
	var runs atomic.Int64
	h.srv.runFn = func(ctx context.Context, sp *Spec, workers int, emit func(Event)) (any, error) {
		runs.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(func() { h.ts.Close(); h.srv.Close() })

	_, j, _ := h.post(t, `{"kind":"droop"}`)
	// Wait until the job is parked in backoff (queued with attempts=1).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, body := h.get(t, "/v1/jobs/"+j.ID)
		var ws struct {
			State    string `json:"state"`
			Attempts int    `json:"attempts"`
		}
		json.Unmarshal(body, &ws)
		if ws.State == "queued" && ws.Attempts == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.del(t, "/v1/jobs/"+j.ID)
	h.waitState(t, j.ID, "canceled")
	time.Sleep(50 * time.Millisecond)
	if n := runs.Load(); n != 1 {
		t.Fatalf("runs=%d want 1 (canceled job must not retry)", n)
	}
}
