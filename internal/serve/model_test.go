package serve

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"waferscale/internal/core"
	"waferscale/internal/noc"
)

// The labeling contract from the two-tier DSE work: approximate runs
// are a different spec, so they must hash to different cache keys than
// their exact counterparts — a cached analytical curve can never be
// served for a cycle-accurate request or vice versa.
func TestCacheKeySeparatesModels(t *testing.T) {
	cases := [][2]string{
		{
			`{"kind":"throughput"}`,
			`{"kind":"throughput","throughput":{"model":"analytical"}}`,
		},
		{
			`{"kind":"dse"}`,
			`{"kind":"dse","dse":{"model":"analytical"}}`,
		},
		{
			`{"kind":"pareto"}`,
			`{"kind":"pareto","pareto":{"mode":"screen"}}`,
		},
		{
			`{"kind":"pareto"}`,
			`{"kind":"pareto","pareto":{"mode":"twotier"}}`,
		},
		{
			`{"kind":"pareto","pareto":{"mode":"screen"}}`,
			`{"kind":"pareto","pareto":{"mode":"twotier"}}`,
		},
		{
			// Two-tier tuning knobs are part of the two-tier key.
			`{"kind":"pareto","pareto":{"mode":"twotier"}}`,
			`{"kind":"pareto","pareto":{"mode":"twotier","topK":5}}`,
		},
	}
	for _, c := range cases {
		a, b := specKeyFromJSON(t, c[0]), specKeyFromJSON(t, c[1])
		if a == b {
			t.Errorf("specs %s and %s collided on key %s", c[0], c[1], a)
		}
	}
}

// Omitting the model must hash the same as spelling out the exact
// default — clients that never heard of the analytical backend keep
// hitting their old cache entries.
func TestCacheKeyModelCanonicalForm(t *testing.T) {
	if a, b := specKeyFromJSON(t, `{"kind":"throughput"}`),
		specKeyFromJSON(t, `{"kind":"throughput","throughput":{"model":"cycle"}}`); a != b {
		t.Errorf("throughput: implicit and explicit cycle model diverged: %s vs %s", a, b)
	}
	if a, b := specKeyFromJSON(t, `{"kind":"dse","dse":{"model":" Analytical "}}`),
		specKeyFromJSON(t, `{"kind":"dse","dse":{"model":"analytical"}}`); a != b {
		t.Errorf("dse: model spelling fragmented the key: %s vs %s", a, b)
	}
	if a, b := specKeyFromJSON(t, `{"kind":"pareto"}`),
		specKeyFromJSON(t, `{"kind":"pareto","pareto":{"mode":"exact"}}`); a != b {
		t.Errorf("pareto: implicit and explicit exact mode diverged: %s vs %s", a, b)
	}
	// Two-tier defaults fill like every other default.
	if a, b := specKeyFromJSON(t, `{"kind":"pareto","pareto":{"mode":"twotier"}}`),
		specKeyFromJSON(t, `{"kind":"pareto","pareto":{"mode":"twotier","topK":2,"bandPct":5}}`); a != b {
		t.Errorf("pareto: two-tier default filling diverged: %s vs %s", a, b)
	}
}

// TopK/BandPct only exist in two-tier mode; in exact or screen mode
// they are normalized away so stray values cannot fragment the key.
func TestCacheKeyTwoTierKnobsZeroedOutsideTwoTier(t *testing.T) {
	if a, b := specKeyFromJSON(t, `{"kind":"pareto"}`),
		specKeyFromJSON(t, `{"kind":"pareto","pareto":{"topK":7,"bandPct":3.5}}`); a != b {
		t.Errorf("exact pareto: stray two-tier knobs fragmented the key: %s vs %s", a, b)
	}
	if a, b := specKeyFromJSON(t, `{"kind":"pareto","pareto":{"mode":"screen"}}`),
		specKeyFromJSON(t, `{"kind":"pareto","pareto":{"mode":"screen","topK":7}}`); a != b {
		t.Errorf("screen pareto: stray topK fragmented the key: %s vs %s", a, b)
	}
}

func TestNormalizeRejectsBadModelKnobs(t *testing.T) {
	bad := []string{
		`{"kind":"throughput","throughput":{"model":"magic"}}`,
		`{"kind":"dse","dse":{"model":"quantum"}}`,
		`{"kind":"pareto","pareto":{"mode":"threetier"}}`,
		`{"kind":"pareto","pareto":{"mode":"twotier","topK":65}}`,
		`{"kind":"pareto","pareto":{"mode":"twotier","bandPct":51}}`,
		`{"kind":"pareto","pareto":{"mode":"twotier","bandPct":-1}}`,
	}
	for _, body := range bad {
		sp := mustDecodeSpec(t, body)
		if err := sp.Normalize(); err == nil {
			t.Errorf("spec %s normalized without error", body)
		}
	}
}

func mustDecodeSpec(t *testing.T, body string) *Spec {
	t.Helper()
	var sp Spec
	if err := json.Unmarshal([]byte(body), &sp); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	return &sp
}

// eventLog collects emitted progress events; emit may be called from
// worker goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) emit(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) stages() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := map[string]int{}
	for _, ev := range l.events {
		m[ev.Stage]++
	}
	return m
}

// An analytical throughput job runs end to end, labels its result, and
// returns one point per requested rate.
func TestRunThroughputAnalytical(t *testing.T) {
	sp := mustDecodeSpec(t, `{"kind":"throughput","throughput":{"side":8,"model":"analytical","rates":[0.05,0.2,0.5]}}`)
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.(*ThroughputResult)
	if tr.Model != noc.ModelNameAnalytical {
		t.Fatalf("result model %q, want %q", tr.Model, noc.ModelNameAnalytical)
	}
	if len(tr.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(tr.Points))
	}
	for _, p := range tr.Points {
		if p.DeliveredRate <= 0 || p.AvgLatency <= 0 {
			t.Fatalf("degenerate analytical point %+v", p)
		}
	}
}

// A dse job streams one progress event per completed side (the serve
// face of the SweepArraySize progress hook) and labels its result.
func TestRunDSEStreamsProgress(t *testing.T) {
	sp := mustDecodeSpec(t, `{"kind":"dse","dse":{"sides":[8,12],"model":"analytical"}}`)
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	var log eventLog
	res, err := Run(context.Background(), sp, 2, log.emit)
	if err != nil {
		t.Fatal(err)
	}
	dr := res.(*DSEResult)
	if dr.Model != noc.ModelNameAnalytical {
		t.Fatalf("result model %q, want %q", dr.Model, noc.ModelNameAnalytical)
	}
	if len(dr.ArrayPoints) != 2 {
		t.Fatalf("got %d points, want 2", len(dr.ArrayPoints))
	}
	for _, p := range dr.ArrayPoints {
		if p.Model != noc.ModelNameAnalytical {
			t.Fatalf("point model %q, want analytical", p.Model)
		}
	}
	if n := log.stages()["points"]; n < 3 { // 0/2, 1/2, 2/2
		t.Fatalf("got %d 'points' progress events, want >= 3", n)
	}
}

// A two-tier pareto job returns the verified (cycle-labeled) frontier,
// the analytical screen, survivor accounting and an error report, and
// streams screen/verify stage progress.
func TestRunParetoTwoTier(t *testing.T) {
	body := `{"kind":"pareto","pareto":{"sides":[8,12],"edgeV":[2.0,2.5],"pillars":[1],"mode":"twotier"}}`
	sp := mustDecodeSpec(t, body)
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	var log eventLog
	res, err := Run(context.Background(), sp, 2, log.emit)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.(*ParetoResult)
	if pr.Mode != "twotier" || pr.Model != noc.ModelNameCycle {
		t.Fatalf("labels mode=%q model=%q, want twotier/cycle", pr.Mode, pr.Model)
	}
	if len(pr.Screened) != 4 {
		t.Fatalf("screened %d points, want the full 4-point grid", len(pr.Screened))
	}
	for _, p := range pr.Screened {
		if p.Model != noc.ModelNameAnalytical {
			t.Fatalf("screened point model %q, want analytical", p.Model)
		}
	}
	for _, p := range pr.Frontier {
		if p.Model != noc.ModelNameCycle {
			t.Fatalf("frontier point model %q, want cycle", p.Model)
		}
	}
	if pr.Survivors+pr.ScreenedOut != 4 {
		t.Fatalf("survivors %d + screenedOut %d != 4", pr.Survivors, pr.ScreenedOut)
	}
	if pr.ModelError == nil || pr.ModelError.Points != pr.Survivors {
		t.Fatalf("error report missing or wrong size: %+v", pr.ModelError)
	}
	st := log.stages()
	if st["screen"] == 0 || st["verify"] == 0 {
		t.Fatalf("missing stage progress, got %v", st)
	}

	// The verified two-tier frontier must equal the exact frontier on
	// the same space — the differential contract, here at the serve
	// layer where cache keys and labels live.
	exact := mustDecodeSpec(t, `{"kind":"pareto","pareto":{"sides":[8,12],"edgeV":[2.0,2.5],"pillars":[1]}}`)
	if err := exact.Normalize(); err != nil {
		t.Fatal(err)
	}
	eres, err := Run(context.Background(), exact, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	epr := eres.(*ParetoResult)
	if len(epr.Frontier) != len(pr.Frontier) {
		t.Fatalf("two-tier frontier has %d points, exact %d", len(pr.Frontier), len(epr.Frontier))
	}
	for i := range epr.Frontier {
		if epr.Frontier[i] != pr.Frontier[i] {
			t.Fatalf("frontier point %d differs: twotier %+v vs exact %+v", i, pr.Frontier[i], epr.Frontier[i])
		}
	}
	if core.DefaultTopK < 1 {
		t.Fatal("unreachable; keeps core import honest")
	}
}
