package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"waferscale/internal/noc"
	"waferscale/internal/workload"
)

// The workload kind's canonical form mirrors the topology convention:
// the default placement (rowmajor) collapses to the absent field, the
// default graph/sizes fill in explicitly, so every spelling of the
// default question shares one cache key.
func TestWorkloadCacheKeyCanonicalForm(t *testing.T) {
	cases := [][2]string{
		{
			`{"kind":"workload"}`,
			`{"kind":"workload","workload":{"graph":"transformer"}}`,
		},
		{
			`{"kind":"workload"}`,
			`{"kind":"workload","workload":{"placement":"rowmajor"}}`,
		},
		{
			`{"kind":"workload"}`,
			`{"kind":"workload","workload":{"topology":"mesh","placement":" RowMajor "}}`,
		},
		{
			`{"kind":"workload"}`,
			`{"kind":"workload","workload":{"graph":" Transformer ","tokens":8,"dim":8,"experts":2,"side":8}}`,
		},
		{
			`{"kind":"workload","workload":{"placement":"blocked"}}`,
			`{"kind":"workload","workload":{"placement":" Blocked "}}`,
		},
	}
	for _, c := range cases {
		a, b := specKeyFromJSON(t, c[0]), specKeyFromJSON(t, c[1])
		if a != b {
			t.Errorf("specs %s and %s should share a key, got %s vs %s", c[0], c[1], a, b)
		}
	}
}

// No two (topology, placement) combinations may alias: a cached mesh/
// rowmajor report can never answer an express/bandwidth request.
func TestWorkloadCacheKeyNoAlias(t *testing.T) {
	keys := map[string]string{}
	for _, topo := range noc.TopologyNames() {
		for _, pl := range workload.PlacementNames() {
			spec := fmt.Sprintf(`{"kind":"workload","workload":{"topology":%q,"placement":%q}}`, topo, pl)
			key := specKeyFromJSON(t, spec)
			if prev, dup := keys[key]; dup {
				t.Errorf("combos %s and %s/%s share cache key %s", prev, topo, pl, key)
			}
			keys[key] = topo + "/" + pl
		}
	}
	// Size knobs are part of the question too.
	if specKeyFromJSON(t, `{"kind":"workload"}`) ==
		specKeyFromJSON(t, `{"kind":"workload","workload":{"tokens":6}}`) {
		t.Error("token count did not change the cache key")
	}
}

// TestWorkloadNormalizeRejects pins the validation errors.
func TestWorkloadNormalizeRejects(t *testing.T) {
	bad := []string{
		`{"kind":"workload","workload":{"graph":"nosuch"}}`,
		`{"kind":"workload","workload":{"placement":"nosuch"}}`,
		`{"kind":"workload","workload":{"topology":"torus"}}`,
		`{"kind":"workload","workload":{"topology":"vertical","side":7}}`,
		`{"kind":"workload","workload":{"side":1}}`,
		`{"kind":"workload","workload":{"tokens":1000}}`,
	}
	for _, body := range bad {
		var sp Spec
		if err := json.Unmarshal([]byte(body), &sp); err != nil {
			t.Fatalf("unmarshal %q: %v", body, err)
		}
		if err := sp.Normalize(); err == nil {
			t.Errorf("spec %s should be rejected", body)
		}
	}
}

// TestWorkloadRunVerifies runs the workload kind end to end through
// serve.Run: the report must complete and the differential check
// against the host reference must pass.
func TestWorkloadRunVerifies(t *testing.T) {
	var sp Spec
	body := `{"kind":"workload","workload":{"side":4,"topology":"cmesh","placement":"blocked"}}`
	if err := json.Unmarshal([]byte(body), &sp); err != nil {
		t.Fatal(err)
	}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), &sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	wr, ok := res.(*WorkloadResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if !wr.Report.Completed {
		t.Fatalf("workload failed at op %q", wr.Report.FailedOp)
	}
	if !wr.Verified {
		t.Fatalf("outputs diverged from reference: %v", wr.Mismatched)
	}
	if wr.Report.Topology != "cmesh" || wr.Topology != "cmesh" || wr.Placement != "blocked" {
		t.Errorf("result labels wrong: report=%q topo=%q placement=%q",
			wr.Report.Topology, wr.Topology, wr.Placement)
	}
	if wr.Report.TotalCycles <= 0 || wr.Report.RemoteOps <= 0 {
		t.Errorf("implausible report totals: %+v", wr.Report)
	}
}
