package serve

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: canonical-spec hash ->
// marshaled result. It is bounded both by entry count and by total
// stored bytes, evicting least-recently-used entries when either bound
// is exceeded, and keeps hit/miss/eviction counters for the stats
// endpoint. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to maxEntries entries and maxBytes
// total value bytes; non-positive bounds take defaults (256 entries,
// 64 MiB).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and records a hit or miss. The
// returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the value under key (replacing any previous value) and
// evicts LRU entries until both bounds hold again. A value larger than
// the byte bound is not cached at all.
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.val))
	c.evictions++
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	MaxEntries int   `json:"maxEntries"`
	MaxBytes   int64 `json:"maxBytes"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.ll.Len(),
		Bytes:      c.bytes,
		MaxEntries: c.maxEntries,
		MaxBytes:   c.maxBytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
	}
}
