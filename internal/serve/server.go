package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"waferscale/internal/parallel"
	"waferscale/internal/store"
)

// Config sizes the server.
type Config struct {
	// Slots is the number of jobs computed concurrently; 0 means
	// GOMAXPROCS. The CPU budget is partitioned across the slots
	// (each job is granted Budget.Total()/Slots workers, at least 1),
	// so co-scheduled jobs never oversubscribe the host.
	Slots int
	// QueueDepth bounds the queued-job backlog across all priority
	// lanes; 0 means 64. A full queue answers 429 with Retry-After.
	QueueDepth int
	// CacheEntries / CacheBytes bound the result cache; 0 means the
	// NewCache defaults (256 entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// MaxJobRecords bounds retained job metadata; terminal records are
	// pruned oldest-first past the bound. 0 means 1024.
	MaxJobRecords int
	// Budget supplies the CPU tokens; nil means a fresh GOMAXPROCS
	// pool. Inject a shared budget when the daemon co-hosts other
	// CPU-bound work.
	Budget *parallel.Budget

	// Store, when non-nil, is the disk tier beneath the in-memory
	// cache: results are written through on completion and served (and
	// promoted) on memory misses, so completed work survives restarts.
	Store *store.Store
	// Journal, when non-nil, is the write-ahead job log: submissions
	// are recorded before the 202 reply and transitions after, so a
	// crashed daemon's interrupted jobs can be re-enqueued by Recover.
	// A server built with a Journal is not ready (see /readyz) until
	// Recover runs.
	Journal *store.Journal

	// StallTimeout enables the stuck-job watchdog: a running job whose
	// progress events stall longer than this is context-canceled and
	// retried (up to StallRetries times, with jittered exponential
	// backoff starting at RetryBackoff) before being failed. 0
	// disables the watchdog.
	StallTimeout time.Duration
	// StallPoll is the watchdog scan interval; 0 means StallTimeout/4
	// (at least 100ms).
	StallPoll time.Duration
	// StallRetries bounds watchdog-triggered re-runs per job; 0 means
	// 2. Negative means no retries (a stalled job fails immediately).
	StallRetries int
	// RetryBackoff is the base delay before a stalled job re-enters
	// the queue; 0 means 1s. The k-th retry waits about
	// RetryBackoff<<k plus up to 50% jitter, so co-stalled jobs do not
	// retry in lockstep.
	RetryBackoff time.Duration
}

// Server is the simulation-as-a-service daemon core: a bounded
// priority job queue, a worker pool partitioning the CPU budget, a
// content-addressed result cache (in-memory LRU over an optional disk
// store) with single-flight dedup of identical in-flight requests, a
// write-ahead job journal with crash recovery, per-job panic
// isolation, a stuck-job watchdog, job lifecycle plus chunked progress
// streaming over HTTP, and graceful drain.
type Server struct {
	slots        int
	maxRec       int
	cache        *Cache
	budget       *parallel.Budget
	mux          *http.ServeMux
	runFn        func(context.Context, *Spec, int, func(Event)) (any, error)
	disk         *store.Store
	journal      *store.Journal
	stallTimeout time.Duration
	stallPoll    time.Duration
	stallRetries int
	retryBackoff time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	queue    *jobQueue
	jobs     map[string]*Job
	order    []string        // insertion order, for listing and pruning
	inflight map[string]*Job // cache key -> queued/running job (single-flight)
	running  int
	draining bool
	ready    bool
	idSeq    int64
	rng      *rand.Rand // backoff jitter (service-level; no determinism contract)

	// Recent completed-job durations (ring) sizing Retry-After.
	recentDur [32]time.Duration
	durIdx    int
	durN      int

	// Counters (under mu).
	admitted, rejected, joins, executed int64
	panics, stalls, stallRequeues       int64
	journalErrors, storeErrors          int64
	recovered                           int

	watchStop chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// New builds a Server and starts its worker pool. Callers must Drain
// (or Close) it to stop the workers. If cfg.Journal is set the server
// reports not-ready until Recover is called.
func New(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxJobRecords <= 0 {
		cfg.MaxJobRecords = 1024
	}
	if cfg.Budget == nil {
		cfg.Budget = parallel.NewBudget(0)
	}
	if cfg.StallRetries == 0 {
		cfg.StallRetries = 2
	}
	if cfg.StallRetries < 0 {
		cfg.StallRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = time.Second
	}
	if cfg.StallPoll <= 0 {
		cfg.StallPoll = cfg.StallTimeout / 4
		if cfg.StallPoll < 100*time.Millisecond {
			cfg.StallPoll = 100 * time.Millisecond
		}
	}
	s := &Server{
		slots:        cfg.Slots,
		maxRec:       cfg.MaxJobRecords,
		cache:        NewCache(cfg.CacheEntries, cfg.CacheBytes),
		budget:       cfg.Budget,
		disk:         cfg.Store,
		journal:      cfg.Journal,
		stallTimeout: cfg.StallTimeout,
		stallPoll:    cfg.StallPoll,
		stallRetries: cfg.StallRetries,
		retryBackoff: cfg.RetryBackoff,
		queue:        newJobQueue(cfg.QueueDepth),
		jobs:         make(map[string]*Job),
		inflight:     make(map[string]*Job),
		ready:        cfg.Journal == nil,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
		runFn:        Run,
		watchStop:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.buildMux()
	for i := 0; i < s.slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.stallTimeout > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// journalLocked appends a journal record, counting (never surfacing)
// append errors — a sick journal must not take the serving path down.
// Caller holds s.mu.
func (s *Server) journalLocked(r store.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(r); err != nil {
		s.journalErrors++
	}
}

// worker pulls jobs off the priority queue and executes them until the
// server drains and the queue is empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.draining && s.queue.depth() == 0 {
			s.cond.Wait()
		}
		j := s.queue.pop()
		if j == nil { // draining and nothing left
			s.mu.Unlock()
			return
		}
		grant := s.budget.Acquire(parallel.FairShare(s.budget.Total(), s.slots))
		j.state = StateRunning
		j.started = time.Now()
		j.lastProgress = time.Time{}
		j.workers = grant
		s.running++
		s.executed++
		s.journalLocked(store.Record{Op: store.OpStarted, ID: j.ID, Key: j.Key})
		j.publish(Event{State: string(StateRunning)})
		s.mu.Unlock()

		res, err := s.runIsolated(j, grant)
		s.budget.Release(grant)

		// Marshal and persist outside the lock: disk writes must not
		// stall the HTTP path.
		var payload json.RawMessage
		var merr error
		if err == nil {
			payload, merr = json.Marshal(res)
			if merr == nil && s.disk != nil {
				if serr := s.disk.Put(j.Key, payload); serr != nil {
					s.mu.Lock()
					s.storeErrors++
					s.mu.Unlock()
				}
			}
		}

		s.mu.Lock()
		s.running--
		switch {
		case err == nil && merr != nil:
			s.finishLocked(j, StateFailed, fmt.Sprintf("marshal result: %v", merr), nil)
		case err == nil:
			s.cache.Put(j.Key, payload)
			s.finishLocked(j, StateDone, "", payload)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if j.stalled && !s.draining && j.attempts < s.stallRetries {
				s.requeueStalledLocked(j)
			} else if j.stalled {
				s.finishLocked(j, StateFailed,
					fmt.Sprintf("stalled: no progress for %s, gave up after %d attempt(s)", s.stallTimeout, j.attempts+1), nil)
			} else {
				s.finishLocked(j, StateCanceled, "canceled", nil)
			}
		default:
			s.finishLocked(j, StateFailed, err.Error(), nil)
		}
		s.mu.Unlock()
	}
}

// runIsolated executes the job's analysis with panic isolation: a
// panicking analysis fails that job with the captured stack instead of
// taking the daemon down — the serving-layer analogue of routing
// around a dead chiplet.
func (s *Server) runIsolated(j *Job, grant int) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return s.runFn(j.ctx, j.Spec, grant, func(ev Event) {
		s.mu.Lock()
		j.lastProgress = time.Now()
		j.publish(ev)
		s.mu.Unlock()
	})
}

// watchdog scans running jobs and cancels any whose progress events
// have stalled beyond StallTimeout; the worker then retries it with
// backoff (requeueStalledLocked) or fails it.
func (s *Server) watchdog() {
	defer s.wg.Done()
	t := time.NewTicker(s.stallPoll)
	defer t.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
		}
		now := time.Now()
		s.mu.Lock()
		for _, id := range s.order {
			j := s.jobs[id]
			if j == nil || j.state != StateRunning || j.stalled {
				continue
			}
			last := j.lastProgress
			if last.IsZero() {
				last = j.started
			}
			if now.Sub(last) > s.stallTimeout {
				j.stalled = true
				s.stalls++
				j.publish(Event{Stage: "watchdog", Error: fmt.Sprintf("no progress for %s: canceling", now.Sub(last).Round(time.Millisecond))})
				j.cancel()
			}
		}
		s.mu.Unlock()
	}
}

// requeueStalledLocked sends a watchdog-canceled job back to its queue
// lane after a jittered exponential backoff (synchronized stalls —
// e.g. a host-wide pause — must not retry in lockstep). The job keeps
// its identity, single-flight entry and journal acceptance; it gets a
// fresh context. Caller holds s.mu.
func (s *Server) requeueStalledLocked(j *Job) {
	j.attempts++
	s.stallRequeues++
	j.stalled = false
	j.state = StateQueued
	j.started = time.Time{}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	delay := s.retryBackoff << uint(j.attempts-1)
	delay += time.Duration(s.rng.Int63n(int64(delay)/2 + 1))
	j.publish(Event{State: string(StateQueued), Stage: "watchdog",
		Error: fmt.Sprintf("stalled; retry %d/%d in %s", j.attempts, s.stallRetries, delay.Round(time.Millisecond))})
	j.retryTimer = time.AfterFunc(delay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		j.retryTimer = nil
		if j.state != StateQueued { // canceled or finished meanwhile
			return
		}
		if s.draining {
			s.finishLocked(j, StateCanceled, "server draining", nil)
			return
		}
		if !s.queue.push(j) {
			s.finishLocked(j, StateFailed, "queue full on stall retry", nil)
			return
		}
		s.cond.Signal()
	})
}

// finishLocked moves a job to a terminal state, publishes the terminal
// event, journals the transition, releases its subscribers and clears
// its single-flight entry. Caller holds s.mu.
func (s *Server) finishLocked(j *Job, st State, errStr string, result json.RawMessage) {
	if j.state.terminal() {
		return
	}
	j.state = st
	j.err = errStr
	j.result = result
	j.finished = time.Now()
	j.cancel() // release the context's resources in every path
	if j.retryTimer != nil {
		j.retryTimer.Stop()
		j.retryTimer = nil
	}
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	if st == StateDone && !j.started.IsZero() {
		s.recordDurationLocked(j.finished.Sub(j.started))
	}
	var op string
	switch st {
	case StateDone:
		op = store.OpDone
	case StateFailed:
		op = store.OpFailed
	default:
		op = store.OpCanceled
	}
	s.journalLocked(store.Record{Op: op, ID: j.ID, Key: j.Key, Error: errStr})
	j.publish(Event{State: string(st), Error: errStr})
	j.closeSubs()
}

// minMeanJobDuration is the floor on the observed mean job duration
// used by the Retry-After estimator (see retryAfterLocked).
const minMeanJobDuration = 100 * time.Millisecond

// recordDurationLocked feeds the Retry-After estimator. Caller holds
// s.mu.
func (s *Server) recordDurationLocked(d time.Duration) {
	s.recentDur[s.durIdx] = d
	s.durIdx = (s.durIdx + 1) % len(s.recentDur)
	if s.durN < len(s.recentDur) {
		s.durN++
	}
}

// retryAfterLocked estimates how long a rejected client should wait:
// the backlog ahead of it, divided across the slots, times the mean
// recent job duration. With no history yet it assumes 2s per job; a
// recorded mean is floored at minMeanJobDuration so a ring full of
// near-instant completions (cache-warm jobs, coarse clocks rounding
// sub-millisecond runs to zero) cannot collapse the estimate to
// "retry immediately" while a deep backlog still has to drain.
// Caller holds s.mu.
func (s *Server) retryAfterLocked() int {
	mean := 2 * time.Second
	if s.durN > 0 {
		var sum time.Duration
		for i := 0; i < s.durN; i++ {
			sum += s.recentDur[i]
		}
		mean = sum / time.Duration(s.durN)
		if mean < minMeanJobDuration {
			mean = minMeanJobDuration
		}
	}
	secs := math.Ceil(float64(s.queue.depth()+s.running) / float64(s.slots) * mean.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return int(secs)
}

// newJobLocked registers a job record. Caller holds s.mu.
func (s *Server) newJobLocked(sp *Spec, key string, prio Priority) *Job {
	s.idSeq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:       "j" + strconv.FormatInt(s.idSeq, 10),
		Key:      key,
		Spec:     sp,
		Priority: prio,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
		created:  time.Now(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.pruneLocked()
	return j
}

// pruneLocked drops the oldest terminal job records past MaxJobRecords
// so a long-lived daemon's memory stays bounded. Caller holds s.mu.
func (s *Server) pruneLocked() {
	if len(s.order) <= s.maxRec {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxRec
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.state.terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// RecoveryStats summarizes a Recover pass.
type RecoveryStats struct {
	// Requeued jobs were interrupted mid-flight and are running again.
	Requeued int `json:"requeued"`
	// FromStore jobs already had a durable result on disk (the crash
	// hit between the store write and the journal's terminal record);
	// they are marked done without recomputation.
	FromStore int `json:"fromStore"`
	// Dropped jobs could not be revived (spec no longer normalizes
	// after a version change, or the queue was full); each is closed
	// out in the journal so it is not retried forever.
	Dropped int `json:"dropped"`
}

// Recover re-enqueues the journal's live jobs — the ones a previous
// process accepted but never finished — and marks the server ready.
// Idempotency is free: jobs are content-addressed, so an interrupted
// job whose result actually made it to the disk store is recognized
// and closed out instead of recomputed, and duplicate live entries
// collapse through the single-flight index. Call it once, after New
// and before serving traffic.
func (s *Server) Recover(live []store.LiveJob) RecoveryStats {
	var rs RecoveryStats
	for _, lj := range live {
		rs = s.recoverOne(lj, rs)
	}
	s.mu.Lock()
	s.recovered = rs.Requeued
	s.ready = true
	s.mu.Unlock()
	return rs
}

func (s *Server) recoverOne(lj store.LiveJob, rs RecoveryStats) RecoveryStats {
	var sp Spec
	if err := json.Unmarshal(lj.Spec, &sp); err != nil {
		s.mu.Lock()
		s.journalLocked(store.Record{Op: store.OpFailed, ID: lj.ID, Key: lj.Key, Error: "recovery: spec unreadable"})
		s.mu.Unlock()
		rs.Dropped++
		return rs
	}
	if err := sp.Normalize(); err != nil {
		s.mu.Lock()
		s.journalLocked(store.Record{Op: store.OpFailed, ID: lj.ID, Key: lj.Key, Error: fmt.Sprintf("recovery: %v", err)})
		s.mu.Unlock()
		rs.Dropped++
		return rs
	}
	key := sp.CacheKey()
	prio, perr := ParsePriority(lj.Priority)
	if perr != nil {
		prio = PriorityNormal
	}
	// The result may already be durable: the crash landed between the
	// store write and the journal's terminal append.
	if s.disk != nil {
		if payload, ok := s.disk.Get(key); ok {
			s.mu.Lock()
			s.cache.Put(key, payload)
			s.journalLocked(store.Record{Op: store.OpDone, ID: lj.ID, Key: lj.Key})
			s.mu.Unlock()
			rs.FromStore++
			return rs
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.inflight[key]; dup {
		// Another live entry (or an early client) already revived this
		// key; close out this record.
		s.journalLocked(store.Record{Op: store.OpCanceled, ID: lj.ID, Key: lj.Key, Error: "recovery: superseded"})
		return rs
	}
	j := s.newJobLocked(&sp, key, prio)
	j.recovered = true
	if !s.queue.push(j) {
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		j.cancel()
		s.journalLocked(store.Record{Op: store.OpFailed, ID: lj.ID, Key: lj.Key, Error: "recovery: queue full"})
		rs.Dropped++
		return rs
	}
	s.admitted++
	s.inflight[key] = j
	// Re-accept under the fresh ID; the old ID's record dies with the
	// key-based replay once this run reaches a terminal record.
	specJSON, _ := json.Marshal(&sp)
	s.journalLocked(store.Record{Op: store.OpAccepted, ID: j.ID, Key: key, Priority: prio.String(), Spec: specJSON})
	j.publish(Event{State: string(StateQueued), Stage: "recovery"})
	s.cond.Signal()
	rs.Requeued++
	return rs
}

// MarkReady flips /readyz to 200 without a recovery pass (used when a
// journal-less server wants explicit readiness control in tests).
func (s *Server) MarkReady() {
	s.mu.Lock()
	s.ready = true
	s.mu.Unlock()
}

// Drain gracefully shuts the server down: new submissions are refused,
// queued jobs (including those parked in watchdog backoff) are
// canceled immediately, and running jobs are given until ctx expires
// to finish before their contexts are canceled too. It returns the
// number of running jobs that had to be force-canceled (0 for a clean
// drain) once every worker goroutine has exited.
func (s *Server) Drain(ctx context.Context) int {
	s.stopOnce.Do(func() { close(s.watchStop) })
	s.mu.Lock()
	s.draining = true
	for {
		j := s.queue.pop()
		if j == nil {
			break
		}
		s.finishLocked(j, StateCanceled, "server draining", nil)
	}
	// Jobs in watchdog backoff are queued but not in the queue; sweep
	// them too (finishLocked stops their timers).
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && j.state == StateQueued {
			s.finishLocked(j, StateCanceled, "server draining", nil)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := 0
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, id := range s.order {
			if j := s.jobs[id]; j != nil && j.state == StateRunning {
				j.cancel()
				forced++
			}
		}
		s.mu.Unlock()
		<-done // runners observe cancellation at bounded strides
	}
	return forced
}

// Close force-drains with no grace period (tests and defer paths).
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

// --- HTTP layer ---

// submitRequest is the POST /v1/jobs body: the spec fields plus a
// scheduling priority (which is deliberately not part of the cache
// key).
type submitRequest struct {
	Priority string `json:"priority"`
	Spec
}

// submitResponse is the POST /v1/jobs reply.
type submitResponse struct {
	JobStatus
	Deduped bool `json:"deduped,omitempty"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Cache         CacheStats         `json:"cache"`
	Store         *store.Stats       `json:"store,omitempty"`
	Journal       *store.ReplayStats `json:"journal,omitempty"`
	InflightJoins int64              `json:"inflightJoins"`
	Admitted      int64              `json:"admitted"`
	Rejected      int64              `json:"rejected"`
	Executed      int64              `json:"executed"`
	Panics        int64              `json:"panics"`
	Stalls        int64              `json:"stalls"`
	StallRequeues int64              `json:"stallRequeues"`
	Recovered     int                `json:"recovered"`
	JournalErrors int64              `json:"journalErrors,omitempty"`
	StoreErrors   int64              `json:"storeErrors,omitempty"`
	QueueDepth    int                `json:"queueDepth"`
	QueueLanes    map[string]int     `json:"queueLanes"`
	Running       int                `json:"running"`
	Slots         int                `json:"slots"`
	BudgetTotal   int                `json:"budgetTotal"`
	BudgetFree    int                `json:"budgetFree"`
	Ready         bool               `json:"ready"`
	Draining      bool               `json:"draining"`
	Jobs          map[string]int     `json:"jobs"`
	Goroutines    int                `json:"goroutines"`
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux = mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp := req.Spec
	if err := sp.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := sp.CacheKey()
	specJSON, _ := json.Marshal(&sp)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Content-addressed fast path: the exact question was answered
	// before — the job is born done with the cached result. The memory
	// LRU is probed first; a disk hit is promoted into it.
	payload, ok := s.cache.Get(key)
	if !ok && s.disk != nil {
		if dp, dok := s.disk.Get(key); dok {
			payload, ok = dp, true
			s.cache.Put(key, dp)
		}
	}
	if ok {
		j := s.newJobLocked(&sp, key, prio)
		j.cached = true
		j.result = payload
		j.started, j.finished = j.created, j.created
		j.state = StateDone
		j.cancel()
		j.publish(Event{State: string(StateDone)})
		j.closeSubs()
		resp := submitResponse{JobStatus: j.status(false)}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Single-flight: an identical request is already queued or running
	// — join it instead of computing twice.
	if live, ok := s.inflight[key]; ok {
		live.joins++
		s.joins++
		resp := submitResponse{JobStatus: live.status(false), Deduped: true}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Admission control: a full queue refuses rather than buffering
	// unboundedly; Retry-After scales with the backlog and the mean
	// recent job duration, so clients back off proportionally to how
	// long the backlog will actually take to clear.
	j := s.newJobLocked(&sp, key, prio)
	if !s.queue.push(j) {
		s.rejected++
		// Roll the record back — it never entered the system.
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		j.cancel()
		depth := s.queue.depth()
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs)", depth)
		return
	}
	s.admitted++
	s.inflight[key] = j
	// Write-ahead: the acceptance is durable before the client hears
	// 202, so a crash after this reply cannot forget the job.
	s.journalLocked(store.Record{Op: store.OpAccepted, ID: j.ID, Key: key, Priority: prio.String(), Spec: specJSON})
	j.publish(Event{State: string(StateQueued)})
	s.cond.Signal()
	resp := submitResponse{JobStatus: j.status(false)}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stateFilter := r.URL.Query().Get("state")
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || (stateFilter != "" && string(j.state) != stateFilter) {
			continue
		}
		out = append(out, j.status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	state, errStr, payload := j.state, j.err, j.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errStr)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled")
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": string(state)})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch j.state {
	case StateQueued:
		// Covers both a job in the queue and one parked in watchdog
		// backoff (remove is a no-op for the latter; finishLocked stops
		// its retry timer).
		s.queue.remove(j)
		s.finishLocked(j, StateCanceled, "canceled by client", nil)
	case StateRunning:
		// The worker owns the terminal transition; canceling the
		// context makes the runner return promptly and the slot's CPU
		// grant flow to the next queued job. Clearing stalled keeps the
		// watchdog retry path from resurrecting a client-canceled job.
		j.stalled = false
		j.cancel()
	}
	st := j.status(false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	ch, replay := j.subscribe()
	s.mu.Unlock()

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, ev := range replay {
		enc.Encode(ev)
	}
	if canFlush {
		flusher.Flush()
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Terminal: the state event is normally already in the
				// stream, but a lossy subscriber buffer may have
				// dropped it — emit the final state unconditionally
				// (clients must tolerate a duplicate).
				s.mu.Lock()
				final := Event{Seq: j.seq, UnixMS: time.Now().UnixMilli(), State: string(j.state), Error: j.err}
				s.mu.Unlock()
				enc.Encode(final)
				if canFlush {
					flusher.Flush()
				}
				return
			}
			enc.Encode(ev)
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			s.mu.Lock()
			j.unsubscribe(ch)
			s.mu.Unlock()
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot returns the server counters (also used by the daemon's
// drain logging and the tests).
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	lanes := s.queue.depths()
	st := Stats{
		InflightJoins: s.joins,
		Admitted:      s.admitted,
		Rejected:      s.rejected,
		Executed:      s.executed,
		Panics:        s.panics,
		Stalls:        s.stalls,
		StallRequeues: s.stallRequeues,
		Recovered:     s.recovered,
		JournalErrors: s.journalErrors,
		StoreErrors:   s.storeErrors,
		QueueDepth:    s.queue.depth(),
		QueueLanes: map[string]int{
			"high":   lanes[PriorityHigh],
			"normal": lanes[PriorityNormal],
			"low":    lanes[PriorityLow],
		},
		Running:     s.running,
		Slots:       s.slots,
		BudgetTotal: s.budget.Total(),
		Ready:       s.ready,
		Draining:    s.draining,
		Jobs:        map[string]int{},
		Goroutines:  runtime.NumGoroutine(),
	}
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			st.Jobs[string(j.state)]++
		}
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	st.BudgetFree = s.budget.Free()
	if s.disk != nil {
		ds := s.disk.Stats()
		st.Store = &ds
	}
	if s.journal != nil {
		js := s.journal.ReplayStats()
		st.Journal = &js
	}
	return st
}

// handleHealthz is liveness: the daemon is up and able to answer (it
// stays healthy through panicking jobs and recovery; only a drain
// reports unhealthy so load balancers stop routing to it).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 only once startup recovery has
// re-enqueued the journal's interrupted jobs (and never while
// draining), so a restarted daemon is not routed traffic it would
// answer with an incomplete view of the world.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready, draining := s.ready, s.draining
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !ready:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
