package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"waferscale/internal/parallel"
)

// Config sizes the server.
type Config struct {
	// Slots is the number of jobs computed concurrently; 0 means
	// GOMAXPROCS. The CPU budget is partitioned across the slots
	// (each job is granted Budget.Total()/Slots workers, at least 1),
	// so co-scheduled jobs never oversubscribe the host.
	Slots int
	// QueueDepth bounds the queued-job backlog across all priority
	// lanes; 0 means 64. A full queue answers 429 with Retry-After.
	QueueDepth int
	// CacheEntries / CacheBytes bound the result cache; 0 means the
	// NewCache defaults (256 entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// MaxJobRecords bounds retained job metadata; terminal records are
	// pruned oldest-first past the bound. 0 means 1024.
	MaxJobRecords int
	// Budget supplies the CPU tokens; nil means a fresh GOMAXPROCS
	// pool. Inject a shared budget when the daemon co-hosts other
	// CPU-bound work.
	Budget *parallel.Budget
}

// Server is the simulation-as-a-service daemon core: a bounded
// priority job queue, a worker pool partitioning the CPU budget, a
// content-addressed result cache with single-flight dedup of identical
// in-flight requests, job lifecycle plus chunked progress streaming
// over HTTP, and graceful drain.
type Server struct {
	slots  int
	maxRec int
	cache  *Cache
	budget *parallel.Budget
	mux    *http.ServeMux
	runFn  func(context.Context, *Spec, int, func(Event)) (any, error)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    *jobQueue
	jobs     map[string]*Job
	order    []string        // insertion order, for listing and pruning
	inflight map[string]*Job // cache key -> queued/running job (single-flight)
	running  int
	draining bool
	idSeq    int64

	// Counters (under mu).
	admitted, rejected, joins, executed int64

	wg sync.WaitGroup
}

// New builds a Server and starts its worker pool. Callers must Drain
// (or Close) it to stop the workers.
func New(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxJobRecords <= 0 {
		cfg.MaxJobRecords = 1024
	}
	if cfg.Budget == nil {
		cfg.Budget = parallel.NewBudget(0)
	}
	s := &Server{
		slots:    cfg.Slots,
		maxRec:   cfg.MaxJobRecords,
		cache:    NewCache(cfg.CacheEntries, cfg.CacheBytes),
		budget:   cfg.Budget,
		queue:    newJobQueue(cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		runFn:    Run,
	}
	s.cond = sync.NewCond(&s.mu)
	s.buildMux()
	for i := 0; i < s.slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// worker pulls jobs off the priority queue and executes them until the
// server drains and the queue is empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.draining && s.queue.depth() == 0 {
			s.cond.Wait()
		}
		j := s.queue.pop()
		if j == nil { // draining and nothing left
			s.mu.Unlock()
			return
		}
		grant := s.budget.Acquire(parallel.FairShare(s.budget.Total(), s.slots))
		j.state = StateRunning
		j.started = time.Now()
		j.workers = grant
		s.running++
		s.executed++
		j.publish(Event{State: string(StateRunning)})
		s.mu.Unlock()

		res, err := s.runFn(j.ctx, j.Spec, grant, func(ev Event) {
			s.mu.Lock()
			j.publish(ev)
			s.mu.Unlock()
		})
		s.budget.Release(grant)

		s.mu.Lock()
		s.running--
		switch {
		case err == nil:
			payload, merr := json.Marshal(res)
			if merr != nil {
				s.finishLocked(j, StateFailed, fmt.Sprintf("marshal result: %v", merr), nil)
			} else {
				s.cache.Put(j.Key, payload)
				s.finishLocked(j, StateDone, "", payload)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.finishLocked(j, StateCanceled, "canceled", nil)
		default:
			s.finishLocked(j, StateFailed, err.Error(), nil)
		}
		s.mu.Unlock()
	}
}

// finishLocked moves a job to a terminal state, publishes the terminal
// event, releases its subscribers and clears its single-flight entry.
// Caller holds s.mu.
func (s *Server) finishLocked(j *Job, st State, errStr string, result json.RawMessage) {
	if j.state.terminal() {
		return
	}
	j.state = st
	j.err = errStr
	j.result = result
	j.finished = time.Now()
	j.cancel() // release the context's resources in every path
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	j.publish(Event{State: string(st), Error: errStr})
	j.closeSubs()
}

// newJobLocked registers a job record. Caller holds s.mu.
func (s *Server) newJobLocked(sp *Spec, key string, prio Priority) *Job {
	s.idSeq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:       "j" + strconv.FormatInt(s.idSeq, 10),
		Key:      key,
		Spec:     sp,
		Priority: prio,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
		created:  time.Now(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.pruneLocked()
	return j
}

// pruneLocked drops the oldest terminal job records past MaxJobRecords
// so a long-lived daemon's memory stays bounded. Caller holds s.mu.
func (s *Server) pruneLocked() {
	if len(s.order) <= s.maxRec {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxRec
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.state.terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Drain gracefully shuts the server down: new submissions are refused,
// queued jobs are canceled immediately, and running jobs are given
// until ctx expires to finish before their contexts are canceled too.
// It returns the number of running jobs that had to be force-canceled
// (0 for a clean drain) once every worker goroutine has exited.
func (s *Server) Drain(ctx context.Context) int {
	s.mu.Lock()
	s.draining = true
	for {
		j := s.queue.pop()
		if j == nil {
			break
		}
		s.finishLocked(j, StateCanceled, "server draining", nil)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := 0
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, id := range s.order {
			if j := s.jobs[id]; j != nil && j.state == StateRunning {
				j.cancel()
				forced++
			}
		}
		s.mu.Unlock()
		<-done // runners observe cancellation at bounded strides
	}
	return forced
}

// Close force-drains with no grace period (tests and defer paths).
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

// --- HTTP layer ---

// submitRequest is the POST /v1/jobs body: the spec fields plus a
// scheduling priority (which is deliberately not part of the cache
// key).
type submitRequest struct {
	Priority string `json:"priority"`
	Spec
}

// submitResponse is the POST /v1/jobs reply.
type submitResponse struct {
	JobStatus
	Deduped bool `json:"deduped,omitempty"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Cache         CacheStats     `json:"cache"`
	InflightJoins int64          `json:"inflightJoins"`
	Admitted      int64          `json:"admitted"`
	Rejected      int64          `json:"rejected"`
	Executed      int64          `json:"executed"`
	QueueDepth    int            `json:"queueDepth"`
	QueueLanes    map[string]int `json:"queueLanes"`
	Running       int            `json:"running"`
	Slots         int            `json:"slots"`
	BudgetTotal   int            `json:"budgetTotal"`
	BudgetFree    int            `json:"budgetFree"`
	Draining      bool           `json:"draining"`
	Jobs          map[string]int `json:"jobs"`
	Goroutines    int            `json:"goroutines"`
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp := req.Spec
	if err := sp.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := sp.CacheKey()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Content-addressed fast path: the exact question was answered
	// before — the job is born done with the cached result.
	if payload, ok := s.cache.Get(key); ok {
		j := s.newJobLocked(&sp, key, prio)
		j.cached = true
		j.result = payload
		j.started, j.finished = j.created, j.created
		j.state = StateDone
		j.cancel()
		j.publish(Event{State: string(StateDone)})
		j.closeSubs()
		resp := submitResponse{JobStatus: j.status(false)}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Single-flight: an identical request is already queued or running
	// — join it instead of computing twice.
	if live, ok := s.inflight[key]; ok {
		live.joins++
		s.joins++
		resp := submitResponse{JobStatus: live.status(false), Deduped: true}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Admission control: a full queue refuses rather than buffering
	// unboundedly; Retry-After scales with the backlog per slot.
	j := s.newJobLocked(&sp, key, prio)
	if !s.queue.push(j) {
		s.rejected++
		// Roll the record back — it never entered the system.
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		j.cancel()
		depth := s.queue.depth()
		s.mu.Unlock()
		retry := depth / s.slots
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs)", depth)
		return
	}
	s.admitted++
	s.inflight[key] = j
	j.publish(Event{State: string(StateQueued)})
	s.cond.Signal()
	resp := submitResponse{JobStatus: j.status(false)}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) jobByID(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stateFilter := r.URL.Query().Get("state")
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok || (stateFilter != "" && string(j.state) != stateFilter) {
			continue
		}
		out = append(out, j.status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	state, errStr, payload := j.state, j.err, j.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errStr)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled")
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": string(state)})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch j.state {
	case StateQueued:
		s.queue.remove(j)
		s.finishLocked(j, StateCanceled, "canceled by client", nil)
	case StateRunning:
		// The worker owns the terminal transition; canceling the
		// context makes the runner return promptly and the slot's CPU
		// grant flow to the next queued job.
		j.cancel()
	}
	st := j.status(false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	ch, replay := j.subscribe()
	s.mu.Unlock()

	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, ev := range replay {
		enc.Encode(ev)
	}
	if canFlush {
		flusher.Flush()
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Terminal: the state event is normally already in the
				// stream, but a lossy subscriber buffer may have
				// dropped it — emit the final state unconditionally
				// (clients must tolerate a duplicate).
				s.mu.Lock()
				final := Event{Seq: j.seq, UnixMS: time.Now().UnixMilli(), State: string(j.state), Error: j.err}
				s.mu.Unlock()
				enc.Encode(final)
				if canFlush {
					flusher.Flush()
				}
				return
			}
			enc.Encode(ev)
			if canFlush {
				flusher.Flush()
			}
		case <-r.Context().Done():
			s.mu.Lock()
			j.unsubscribe(ch)
			s.mu.Unlock()
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot returns the server counters (also used by the daemon's
// drain logging and the tests).
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	lanes := s.queue.depths()
	st := Stats{
		InflightJoins: s.joins,
		Admitted:      s.admitted,
		Rejected:      s.rejected,
		Executed:      s.executed,
		QueueDepth:    s.queue.depth(),
		QueueLanes: map[string]int{
			"high":   lanes[PriorityHigh],
			"normal": lanes[PriorityNormal],
			"low":    lanes[PriorityLow],
		},
		Running:     s.running,
		Slots:       s.slots,
		BudgetTotal: s.budget.Total(),
		Draining:    s.draining,
		Jobs:        map[string]int{},
		Goroutines:  runtime.NumGoroutine(),
	}
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			st.Jobs[string(j.state)]++
		}
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	st.BudgetFree = s.budget.Free()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
