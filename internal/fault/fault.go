// Package fault provides fault maps over the waferscale tile array and
// the seeded Monte-Carlo machinery used by the resiliency analyses
// (network connectivity in Fig. 6, clock forwarding in Fig. 4, and the
// bonding-yield estimates in Section V).
//
// The paper treats faults at chiplet granularity; because the compute
// chiplet carries the routers and clock circuitry and the memory chiplet
// carries the north-south feedthroughs, a fault in either chiplet makes
// the tile unusable for routing, so the analyses operate on tile-level
// fault maps (a faulty chiplet implies a faulty tile).
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"waferscale/internal/geom"
)

// Map records which tiles of the array are faulty. The zero value is
// unusable; construct with NewMap.
type Map struct {
	grid   geom.Grid
	faulty []bool
	count  int
}

// NewMap returns an all-healthy fault map over the grid.
func NewMap(grid geom.Grid) *Map {
	return &Map{grid: grid, faulty: make([]bool, grid.Size())}
}

// Grid returns the underlying array shape.
func (m *Map) Grid() geom.Grid { return m.grid }

// MarkFaulty marks a tile faulty. Marking twice is idempotent.
func (m *Map) MarkFaulty(c geom.Coord) {
	i := m.grid.Index(c)
	if !m.faulty[i] {
		m.faulty[i] = true
		m.count++
	}
}

// MarkHealthy clears a tile's fault. Clearing twice is idempotent.
func (m *Map) MarkHealthy(c geom.Coord) {
	i := m.grid.Index(c)
	if m.faulty[i] {
		m.faulty[i] = false
		m.count--
	}
}

// Faulty reports whether the tile is faulty. Coordinates outside the
// grid are reported faulty: the array boundary blocks routes and clocks
// exactly like a dead tile does, which simplifies the analyses.
func (m *Map) Faulty(c geom.Coord) bool {
	if !m.grid.In(c) {
		return true
	}
	return m.faulty[m.grid.Index(c)]
}

// Healthy reports the opposite of Faulty for in-grid tiles.
func (m *Map) Healthy(c geom.Coord) bool { return m.grid.In(c) && !m.Faulty(c) }

// Count returns the number of faulty tiles.
func (m *Map) Count() int { return m.count }

// HealthyCount returns the number of non-faulty tiles.
func (m *Map) HealthyCount() int { return m.grid.Size() - m.count }

// FaultyCoords returns the faulty tiles in row-major order.
func (m *Map) FaultyCoords() []geom.Coord {
	out := make([]geom.Coord, 0, m.count)
	for i, f := range m.faulty {
		if f {
			out = append(out, m.grid.Coord(i))
		}
	}
	return out
}

// HealthyCoords returns the non-faulty tiles in row-major order.
func (m *Map) HealthyCoords() []geom.Coord {
	out := make([]geom.Coord, 0, m.grid.Size()-m.count)
	for i, f := range m.faulty {
		if !f {
			out = append(out, m.grid.Coord(i))
		}
	}
	return out
}

// RowHealthy returns the number of healthy tiles in each row (indexed
// by Y). The analytical NoC timing model builds its per-link traffic
// marginals from these row/column healthy counts.
func (m *Map) RowHealthy() []int {
	out := make([]int, m.grid.H)
	for i, f := range m.faulty {
		if !f {
			out[i/m.grid.W]++
		}
	}
	return out
}

// ColumnHealthy returns the number of healthy tiles in each column
// (indexed by X).
func (m *Map) ColumnHealthy() []int {
	out := make([]int, m.grid.W)
	for i, f := range m.faulty {
		if !f {
			out[i%m.grid.W]++
		}
	}
	return out
}

// Clone returns an independent copy of the map.
func (m *Map) Clone() *Map {
	c := &Map{grid: m.grid, faulty: make([]bool, len(m.faulty)), count: m.count}
	copy(c.faulty, m.faulty)
	return c
}

// Reset clears all faults.
func (m *Map) Reset() {
	for i := range m.faulty {
		m.faulty[i] = false
	}
	m.count = 0
}

// String draws the map: '.' healthy, 'X' faulty, one row per line with
// row Y = H-1 on top (north up), matching the paper's figures.
func (m *Map) String() string {
	var b strings.Builder
	for y := m.grid.H - 1; y >= 0; y-- {
		for x := 0; x < m.grid.W; x++ {
			if m.Faulty(geom.C(x, y)) {
				b.WriteByte('X')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Random returns a fault map with exactly n distinct faulty tiles drawn
// uniformly at random, mirroring the paper's "randomly generated fault
// maps" for the Fig. 6 Monte Carlo. It panics if n exceeds the array.
func Random(grid geom.Grid, n int, rng *rand.Rand) *Map {
	if n < 0 || n > grid.Size() {
		panic(fmt.Sprintf("fault: cannot place %d faults in %v array", n, grid))
	}
	m := NewMap(grid)
	// Partial Fisher-Yates over the tile indices.
	perm := rng.Perm(grid.Size())
	for _, idx := range perm[:n] {
		m.MarkFaulty(grid.Coord(idx))
	}
	return m
}

// FromYield returns a fault map where every tile fails independently
// with probability p (e.g. the post-bond chiplet-loss probability from
// the I/O yield model: a tile dies if either of its two chiplets does).
func FromYield(grid geom.Grid, p float64, rng *rand.Rand) *Map {
	m := NewMap(grid)
	grid.All(func(c geom.Coord) {
		if rng.Float64() < p {
			m.MarkFaulty(c)
		}
	})
	return m
}

// Parse builds a map from the String drawing format ('.'/'X', north row
// first). All rows must be the same width.
func Parse(s string) (*Map, error) {
	lines := strings.Fields(strings.TrimSpace(s))
	if len(lines) == 0 {
		return nil, fmt.Errorf("fault: empty map drawing")
	}
	h := len(lines)
	w := len(lines[0])
	m := NewMap(geom.NewGrid(w, h))
	for row, line := range lines {
		if len(line) != w {
			return nil, fmt.Errorf("fault: row %d width %d != %d", row, len(line), w)
		}
		y := h - 1 - row
		for x, ch := range line {
			switch ch {
			case '.':
			case 'X', 'x':
				m.MarkFaulty(geom.C(x, y))
			default:
				return nil, fmt.Errorf("fault: bad cell %q at (%d,%d)", ch, x, y)
			}
		}
	}
	return m, nil
}

// ConnectedToEdge computes, via breadth-first search over healthy tiles,
// which tiles can reach the array edge through 4-connected healthy
// paths. This is the graph property underlying both clock-forwarding
// reachability (a clock generated at any edge tile reaches exactly
// these tiles) and edge escape for test signals.
func (m *Map) ConnectedToEdge() []bool {
	reach := make([]bool, m.grid.Size())
	queue := make([]geom.Coord, 0, m.grid.Size())
	for _, c := range m.grid.EdgeCoords() {
		if m.Healthy(c) {
			reach[m.grid.Index(c)] = true
			queue = append(queue, c)
		}
	}
	var nbuf []geom.Coord
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		nbuf = m.grid.Neighbors(c, nbuf[:0])
		for _, n := range nbuf {
			i := m.grid.Index(n)
			if !reach[i] && m.Healthy(n) {
				reach[i] = true
				queue = append(queue, n)
			}
		}
	}
	return reach
}

// Isolated returns healthy tiles whose four neighbors are all faulty
// (or off-array). Such tiles can neither receive the forwarded clock
// nor exchange packets — the paper's Fig. 4 "tile 2" case.
func (m *Map) Isolated() []geom.Coord {
	var out []geom.Coord
	m.grid.All(func(c geom.Coord) {
		if !m.Healthy(c) {
			return
		}
		for _, n := range c.Neighbors() {
			if m.Healthy(n) {
				return
			}
		}
		out = append(out, c)
	})
	return out
}

// Stats summarizes a set of sampled values.
type Stats struct {
	N        int
	Mean     float64
	Min, Max float64
	StdDev   float64
}

// Collect computes summary statistics over the samples.
func Collect(samples []float64) Stats {
	s := Stats{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of the samples using
// nearest-rank on a sorted copy.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
