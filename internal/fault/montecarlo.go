package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"waferscale/internal/geom"
	"waferscale/internal/parallel"
)

// Metric evaluates one fault map and returns a scalar (e.g. the
// percentage of disconnected source-destination pairs).
type Metric func(*Map) float64

// MonteCarlo runs trials of a metric over random fault maps with a
// fixed fault count, as the paper does for Fig. 6 ("a set of randomly
// generated fault maps"). Trials are distributed across CPUs; each
// trial uses an independent rand.Rand seeded deterministically from the
// base seed so results are reproducible regardless of scheduling.
type MonteCarlo struct {
	Grid   geom.Grid
	Trials int
	Seed   int64
	// Workers caps parallelism; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is invoked after every completed trial
	// with the number of trials finished so far and the total. It is
	// called concurrently from the worker goroutines and must be safe
	// for concurrent use (the serve layer feeds an atomic counter).
	Progress func(done, total int)
}

// Run evaluates the metric over Trials random maps with exactly faults
// faulty tiles and returns summary statistics.
func (mc MonteCarlo) Run(faults int, metric Metric) Stats {
	samples := mc.Samples(faults, metric)
	return Collect(samples)
}

// RunCtx is Run with cancellation: on ctx cancellation it returns the
// zero Stats and ctx.Err() — partial samples are never summarized.
func (mc MonteCarlo) RunCtx(ctx context.Context, faults int, metric Metric) (Stats, error) {
	samples, err := mc.SamplesCtx(ctx, faults, metric)
	if err != nil {
		return Stats{}, err
	}
	return Collect(samples), nil
}

// Samples returns the raw per-trial metric values, in trial order.
func (mc MonteCarlo) Samples(faults int, metric Metric) []float64 {
	samples, _ := mc.SamplesCtx(context.Background(), faults, metric)
	return samples
}

// SamplesCtx is Samples with cancellation. On ctx cancellation it
// returns (nil, ctx.Err()): the sample slice would have undefined holes
// at the undispatched trial indices, so no partial result is exposed.
func (mc MonteCarlo) SamplesCtx(ctx context.Context, faults int, metric Metric) ([]float64, error) {
	if mc.Trials <= 0 {
		return nil, nil
	}
	samples := make([]float64, mc.Trials)
	if err := mc.ForEachMapCtx(ctx, faults, func(i int, m *Map) { samples[i] = metric(m) }); err != nil {
		return nil, err
	}
	return samples, nil
}

// ForEachMap invokes fn for every trial's fault map on the shared
// bounded worker pool, with the same deterministic per-trial seeding as
// Samples. Use this when a single pass over the map produces several
// metrics at once; fn must be safe for concurrent calls with distinct
// trial indices. Output is bit-identical at any worker count because
// each trial draws from its own derived-seed rand.Rand and writes only
// its own slot.
//
// The map passed to fn lives in per-worker pooled storage (see Sampler)
// and is valid only for the duration of the call — Clone it to retain
// it past the trial. The pooling is invisible to results: a Sampler
// draw is bit-identical to a fresh Random map.
func (mc MonteCarlo) ForEachMap(faults int, fn func(trial int, m *Map)) {
	mc.ForEachMapCtx(context.Background(), faults, fn)
}

// ForEachMapCtx is ForEachMap with cancellation: trials not yet
// dispatched when ctx is cancelled are skipped and ctx.Err() is
// returned; trials already running finish normally (fn is never
// interrupted mid-map). A nil error means every trial ran.
func (mc MonteCarlo) ForEachMapCtx(ctx context.Context, faults int, fn func(trial int, m *Map)) error {
	var done atomic.Int64
	pool := sync.Pool{New: func() any { return NewSampler(mc.Grid) }}
	return parallel.ForEach(ctx, mc.Trials, mc.Workers, func(i int) error {
		rng := rand.New(rand.NewSource(TrialSeed(mc.Seed, faults, i)))
		s := pool.Get().(*Sampler)
		fn(i, s.Draw(faults, rng))
		pool.Put(s)
		if mc.Progress != nil {
			mc.Progress(int(done.Add(1)), mc.Trials)
		}
		return nil
	})
}

// Sweep evaluates the metric at each fault count and returns one Stats
// per count, in order.
func (mc MonteCarlo) Sweep(faultCounts []int, metric Metric) []Stats {
	out, _ := mc.SweepCtx(context.Background(), faultCounts, metric)
	return out
}

// SweepCtx is Sweep with cancellation. On ctx cancellation it returns
// the stats for the fault counts fully completed before the cancel
// (a prefix of faultCounts, possibly empty) together with ctx.Err().
func (mc MonteCarlo) SweepCtx(ctx context.Context, faultCounts []int, metric Metric) ([]Stats, error) {
	out := make([]Stats, 0, len(faultCounts))
	for _, n := range faultCounts {
		st, err := mc.RunCtx(ctx, n, metric)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// TrialSeed derives a per-trial seed from a base seed and a stratum
// (e.g. the fault or kill count) via a splitmix64-style mix, so trials
// are decorrelated even for adjacent indices. Every Monte Carlo in the
// repository (fault maps, chiplet faults, chaos runs) derives its
// per-trial rand.Rand through this one function, which is what makes
// the parallel fan-out reproducible per seed.
func TrialSeed(base int64, stratum, trial int) int64 {
	z := uint64(base) ^ uint64(stratum)<<32 ^ uint64(trial)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// SweepPoint is one row of a fault-count sweep, ready for reporting.
type SweepPoint struct {
	Faults int
	Stats  Stats
}

// FormatSweep renders sweep results as an aligned text table with the
// given value label (used by the CLI and the benchmark harness).
func FormatSweep(points []SweepPoint, label string) string {
	s := fmt.Sprintf("%8s  %12s  %12s  %12s  %12s\n", "faults", label+" mean", "min", "max", "stddev")
	for _, p := range points {
		s += fmt.Sprintf("%8d  %12.4f  %12.4f  %12.4f  %12.4f\n",
			p.Faults, p.Stats.Mean, p.Stats.Min, p.Stats.Max, p.Stats.StdDev)
	}
	return s
}
