package fault

import (
	"math/rand"
	"testing"

	"waferscale/internal/geom"
)

func TestClusteredExactCount(t *testing.T) {
	g := geom.NewGrid(32, 32)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 20, 100} {
		m := Clustered(g, n, DefaultClusters(), rng)
		if m.Count() != n {
			t.Errorf("Clustered(%d) placed %d", n, m.Count())
		}
	}
}

func TestClusteredPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Clustered(geom.NewGrid(2, 2), 9, DefaultClusters(), rand.New(rand.NewSource(1)))
}

// TestClusteredIsClumpier: the adjacency statistic separates clustered
// from uniform maps at the same fault count.
func TestClusteredIsClumpier(t *testing.T) {
	g := geom.NewGrid(32, 32)
	const n, trials = 20, 30
	var uniform, clustered float64
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		uniform += ClusterStats(Random(g, n, rng))
		rng = rand.New(rand.NewSource(int64(i)))
		clustered += ClusterStats(Clustered(g, n, DefaultClusters(), rng))
	}
	uniform /= trials
	clustered /= trials
	if clustered < 3*uniform+0.2 {
		t.Errorf("clustered adjacency %.3f not clearly above uniform %.3f", clustered, uniform)
	}
}

func TestClusterStatsEmpty(t *testing.T) {
	if ClusterStats(NewMap(geom.NewGrid(4, 4))) != 0 {
		t.Error("empty map should score 0")
	}
}

func TestClusteredMonteCarloDeterministic(t *testing.T) {
	mc := ClusteredMonteCarlo{
		Grid: geom.NewGrid(16, 16), Cluster: DefaultClusters(),
		Trials: 8, Seed: 3,
	}
	metric := func(m *Map) float64 { return ClusterStats(m) }
	a := mc.Samples(10, metric)
	b := mc.Samples(10, metric)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d not deterministic", i)
		}
	}
	if mc2 := (ClusteredMonteCarlo{Trials: 0}); mc2.Samples(1, metric) != nil {
		t.Error("zero trials should return nil")
	}
}

func TestClusteredDegenerateMeanSize(t *testing.T) {
	g := geom.NewGrid(8, 8)
	m := Clustered(g, 5, ClusterConfig{MeanClusterSize: 0, Radius: 1}, rand.New(rand.NewSource(2)))
	if m.Count() != 5 {
		t.Errorf("degenerate mean size placed %d", m.Count())
	}
}
