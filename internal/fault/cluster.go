package fault

import (
	"context"
	"math/rand"

	"waferscale/internal/geom"
	"waferscale/internal/parallel"
)

// Clustered fault generation. The paper's Fig. 6 Monte Carlo uses
// uniformly random fault maps, but real assembly and substrate defects
// cluster spatially (a bonding-head misstep, a substrate scratch, a
// contaminated reticle field hit neighboring sites together). The
// clustered generator supports an ablation: how the dual-network
// scheme holds up when the same number of faults arrives in clumps.

// ClusterConfig shapes the clustered generator.
type ClusterConfig struct {
	// MeanClusterSize is the average faults per defect event.
	MeanClusterSize float64
	// Radius bounds how far cluster members scatter (Chebyshev) from
	// the cluster seed.
	Radius int
}

// DefaultClusters models bonding-head events: ~3 faults within one
// tile of the seed.
func DefaultClusters() ClusterConfig {
	return ClusterConfig{MeanClusterSize: 3, Radius: 1}
}

// Clustered returns a fault map with exactly n faulty tiles generated
// as spatial clusters: seeds are uniform, each cluster claims a
// geometric-distributed number of tiles within the radius around its
// seed until n faults are placed.
func Clustered(grid geom.Grid, n int, cfg ClusterConfig, rng *rand.Rand) *Map {
	if n < 0 || n > grid.Size() {
		panic("fault: cluster count out of range")
	}
	m := NewMap(grid)
	if cfg.MeanClusterSize < 1 {
		cfg.MeanClusterSize = 1
	}
	pContinue := 1 - 1/cfg.MeanClusterSize // geometric size distribution
	for m.Count() < n {
		seed := grid.Coord(rng.Intn(grid.Size()))
		m.MarkFaulty(seed)
		for m.Count() < n && rng.Float64() < pContinue {
			// Scatter a cluster member near the seed.
			dx := rng.Intn(2*cfg.Radius+1) - cfg.Radius
			dy := rng.Intn(2*cfg.Radius+1) - cfg.Radius
			c := seed.Add(geom.C(dx, dy))
			if grid.In(c) {
				m.MarkFaulty(c)
			}
		}
	}
	return m
}

// ClusterStats measures how clumped a fault map is: the mean number of
// faulty 4-neighbors per faulty tile. Uniform maps at low density score
// near zero; clustered maps score well above.
func ClusterStats(m *Map) float64 {
	faulty := m.FaultyCoords()
	if len(faulty) == 0 {
		return 0
	}
	adj := 0
	for _, c := range faulty {
		for _, nb := range c.Neighbors() {
			if m.Grid().In(nb) && m.Faulty(nb) {
				adj++
			}
		}
	}
	return float64(adj) / float64(len(faulty))
}

// ClusteredMonteCarlo mirrors MonteCarlo but draws clustered maps.
type ClusteredMonteCarlo struct {
	Grid    geom.Grid
	Cluster ClusterConfig
	Trials  int
	Seed    int64
	// Workers caps trial parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Samples evaluates the metric over clustered fault maps, trials fanned
// out on the shared pool with per-trial derived seeds (bit-identical at
// any worker count).
func (mc ClusteredMonteCarlo) Samples(faults int, metric Metric) []float64 {
	out, _ := mc.SamplesCtx(context.Background(), faults, metric)
	return out
}

// SamplesCtx is Samples with cancellation: trials not yet dispatched
// when ctx is cancelled are skipped and (nil, ctx.Err()) is returned —
// the sample slice would have undefined holes, so no partial result is
// exposed. In-flight trials finish normally.
func (mc ClusteredMonteCarlo) SamplesCtx(ctx context.Context, faults int, metric Metric) ([]float64, error) {
	if mc.Trials <= 0 {
		return nil, nil
	}
	out := make([]float64, mc.Trials)
	err := parallel.ForEach(ctx, mc.Trials, mc.Workers, func(i int) error {
		rng := rand.New(rand.NewSource(TrialSeed(mc.Seed, faults, i)))
		out[i] = metric(Clustered(mc.Grid, faults, mc.Cluster, rng))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
