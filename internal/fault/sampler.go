package fault

import (
	"fmt"
	"math/rand"

	"waferscale/internal/geom"
)

// Sampler draws random fault maps into reused storage. It is the static
// sweep's analogue of the cycle engine's warm-state forking: the Fig. 6
// style Monte Carlos have no temporal prefix to share — every trial is
// an independent draw — so the amortizable cost is the per-trial
// allocation (a fresh Map plus a grid-sized permutation), which the
// sampler replaces with two long-lived buffers per worker.
//
// A Sampler is not safe for concurrent use; pool one per worker
// goroutine. The map it returns is owned by the sampler and valid only
// until the next Draw — callers that retain a map must Clone it.
type Sampler struct {
	m    *Map
	perm []int
}

// NewSampler returns a sampler over the grid.
func NewSampler(grid geom.Grid) *Sampler {
	return &Sampler{m: NewMap(grid), perm: make([]int, grid.Size())}
}

// Draw returns a fault map with exactly n distinct faulty tiles drawn
// uniformly from rng. The draw is bit-identical to Random(grid, n, rng)
// for the same rng state: it replays the same partial Fisher-Yates
// shuffle (the algorithm behind rand.Perm, frozen by the Go 1
// compatibility promise) and marks the same prefix, so pooled sweeps
// reproduce unpooled ones exactly.
func (s *Sampler) Draw(n int, rng *rand.Rand) *Map {
	size := s.m.grid.Size()
	if n < 0 || n > size {
		panic(fmt.Sprintf("fault: cannot place %d faults in %v array", n, s.m.grid))
	}
	s.m.Reset()
	p := s.perm
	for i := 0; i < size; i++ {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	for _, idx := range p[:n] {
		s.m.MarkFaulty(s.m.grid.Coord(idx))
	}
	return s.m
}
