package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"waferscale/internal/geom"
)

// TestSamplerMatchesRandom: a pooled draw must be bit-identical to
// Random for the same rng seed — same faulty set AND same rng state
// afterwards (the sampler replays rand.Perm's exact consumption).
func TestSamplerMatchesRandom(t *testing.T) {
	grid := geom.NewGrid(9, 7)
	s := NewSampler(grid)
	for _, n := range []int{0, 1, 5, grid.Size() / 2, grid.Size()} {
		for seed := int64(1); seed <= 20; seed++ {
			r1 := rand.New(rand.NewSource(seed))
			r2 := rand.New(rand.NewSource(seed))
			want := Random(grid, n, r1)
			got := s.Draw(n, r2)
			if got.Count() != want.Count() {
				t.Fatalf("n=%d seed=%d: count %d, want %d", n, seed, got.Count(), want.Count())
			}
			if !reflect.DeepEqual(got.FaultyCoords(), want.FaultyCoords()) {
				t.Fatalf("n=%d seed=%d: faulty sets diverge:\n%v\n%v", n, seed, got.FaultyCoords(), want.FaultyCoords())
			}
			if g, w := r2.Int63(), r1.Int63(); g != w {
				t.Fatalf("n=%d seed=%d: rng state diverges after draw (%d vs %d)", n, seed, g, w)
			}
		}
	}
}

// TestSamplerReuse: consecutive draws must not leak faults between
// trials (Reset runs every draw), and the second draw of a seed matches
// the first.
func TestSamplerReuse(t *testing.T) {
	grid := geom.NewGrid(6, 6)
	s := NewSampler(grid)
	a := s.Draw(10, rand.New(rand.NewSource(3))).FaultyCoords()
	if got := s.Draw(0, rand.New(rand.NewSource(4))); got.Count() != 0 {
		t.Fatalf("faults leaked across draws: %d", got.Count())
	}
	b := s.Draw(10, rand.New(rand.NewSource(3))).FaultyCoords()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat draw diverges: %v vs %v", a, b)
	}
}

// TestSamplerPanicsOutOfRange mirrors Random's contract.
func TestSamplerPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized draw")
		}
	}()
	NewSampler(geom.NewGrid(2, 2)).Draw(5, rand.New(rand.NewSource(1)))
}

// TestForEachMapPooledDifferential: the pooled ForEachMap must hand
// every trial the exact map the unpooled implementation (fresh Random
// per trial) would have produced, at several worker counts.
func TestForEachMapPooledDifferential(t *testing.T) {
	grid := geom.NewGrid(8, 8)
	const trials, faults, seed = 16, 6, 77

	want := make([][]geom.Coord, trials)
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(TrialSeed(seed, faults, i)))
		want[i] = Random(grid, faults, rng).FaultyCoords()
	}
	for _, workers := range []int{1, 3, 8} {
		mc := MonteCarlo{Grid: grid, Trials: trials, Seed: seed, Workers: workers}
		got := make([][]geom.Coord, trials)
		mc.ForEachMap(faults, func(trial int, m *Map) {
			got[trial] = m.FaultyCoords()
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: pooled maps diverge from fresh Random maps", workers)
		}
	}
}
