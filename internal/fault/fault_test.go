package fault

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"waferscale/internal/geom"
)

func TestMapMarking(t *testing.T) {
	m := NewMap(geom.NewGrid(4, 4))
	c := geom.C(1, 2)
	if m.Faulty(c) {
		t.Fatal("fresh map should be healthy")
	}
	m.MarkFaulty(c)
	if !m.Faulty(c) || m.Count() != 1 {
		t.Fatalf("after mark: faulty=%v count=%d", m.Faulty(c), m.Count())
	}
	m.MarkFaulty(c) // idempotent
	if m.Count() != 1 {
		t.Errorf("double mark changed count to %d", m.Count())
	}
	m.MarkHealthy(c)
	m.MarkHealthy(c)
	if m.Faulty(c) || m.Count() != 0 {
		t.Errorf("after clear: faulty=%v count=%d", m.Faulty(c), m.Count())
	}
	if m.HealthyCount() != 16 {
		t.Errorf("healthy count = %d, want 16", m.HealthyCount())
	}
}

func TestOutOfGridIsFaulty(t *testing.T) {
	m := NewMap(geom.NewGrid(3, 3))
	for _, c := range []geom.Coord{geom.C(-1, 0), geom.C(3, 0), geom.C(0, -1), geom.C(0, 3)} {
		if !m.Faulty(c) {
			t.Errorf("%v outside grid should read faulty", c)
		}
		if m.Healthy(c) {
			t.Errorf("%v outside grid should not read healthy", c)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMap(geom.NewGrid(4, 4))
	m.MarkFaulty(geom.C(0, 0))
	c := m.Clone()
	c.MarkFaulty(geom.C(3, 3))
	if m.Faulty(geom.C(3, 3)) {
		t.Error("clone mutation leaked into original")
	}
	if c.Count() != 2 || m.Count() != 1 {
		t.Errorf("counts = clone %d, orig %d", c.Count(), m.Count())
	}
}

func TestResetClearsEverything(t *testing.T) {
	m := Random(geom.NewGrid(8, 8), 10, rand.New(rand.NewSource(1)))
	m.Reset()
	if m.Count() != 0 {
		t.Errorf("count after reset = %d", m.Count())
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := Random(geom.NewGrid(8, 6), trial, rng)
		p, err := Parse(m.String())
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if p.Grid() != m.Grid() || p.Count() != m.Count() {
			t.Fatalf("round trip changed shape/count")
		}
		for _, c := range m.FaultyCoords() {
			if !p.Faulty(c) {
				t.Fatalf("fault at %v lost in round trip", c)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty drawing accepted")
	}
	if _, err := Parse("..\n.\n"); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Parse("..\n.?\n"); err == nil {
		t.Error("bad cell accepted")
	}
}

func TestParseOrientation(t *testing.T) {
	// First text row is the north (max Y) row.
	m, err := Parse("X.\n..\n")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Faulty(geom.C(0, 1)) {
		t.Error("fault should land at (0,1) — north-west corner")
	}
	if m.Faulty(geom.C(0, 0)) {
		t.Error("(0,0) should be healthy")
	}
}

func TestRandomExactCount(t *testing.T) {
	g := geom.NewGrid(32, 32)
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 5, 50, 1024} {
		m := Random(g, n, rng)
		if m.Count() != n {
			t.Errorf("Random(%d) produced %d faults", n, m.Count())
		}
		if got := len(m.FaultyCoords()); got != n {
			t.Errorf("FaultyCoords len = %d, want %d", got, n)
		}
	}
}

func TestRandomPanicsOnOverfill(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Random(geom.NewGrid(2, 2), 5, rand.New(rand.NewSource(1)))
}

func TestRandomIsUniform(t *testing.T) {
	// Each tile of a 4x4 grid should be hit ~ n*trials/16 times.
	g := geom.NewGrid(4, 4)
	rng := rand.New(rand.NewSource(9))
	hits := make([]int, 16)
	const trials = 4000
	for i := 0; i < trials; i++ {
		for _, c := range Random(g, 4, rng).FaultyCoords() {
			hits[g.Index(c)]++
		}
	}
	want := float64(4*trials) / 16
	for i, h := range hits {
		if math.Abs(float64(h)-want) > 0.15*want {
			t.Errorf("tile %d hit %d times, want ~%.0f", i, h, want)
		}
	}
}

func TestFromYieldMatchesProbability(t *testing.T) {
	g := geom.NewGrid(64, 64)
	rng := rand.New(rand.NewSource(3))
	const p = 0.05
	total := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		total += FromYield(g, p, rng).Count()
	}
	mean := float64(total) / trials
	want := p * float64(g.Size())
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("mean faults = %.1f, want ~%.1f", mean, want)
	}
}

func TestConnectedToEdgeNoFaults(t *testing.T) {
	m := NewMap(geom.NewGrid(8, 8))
	reach := m.ConnectedToEdge()
	for i, r := range reach {
		if !r {
			t.Fatalf("tile %v unreachable in healthy array", m.Grid().Coord(i))
		}
	}
}

func TestConnectedToEdgeWalledOff(t *testing.T) {
	// Wall off the center tile of a 5x5 with its 4 neighbors faulty.
	m := NewMap(geom.NewGrid(5, 5))
	center := geom.C(2, 2)
	for _, n := range center.Neighbors() {
		m.MarkFaulty(n)
	}
	reach := m.ConnectedToEdge()
	if reach[m.Grid().Index(center)] {
		t.Error("walled-off center should be unreachable")
	}
	iso := m.Isolated()
	if len(iso) != 1 || iso[0] != center {
		t.Errorf("Isolated = %v, want [%v]", iso, center)
	}
	// All other healthy tiles still reachable.
	for _, c := range m.HealthyCoords() {
		if c == center {
			continue
		}
		if !reach[m.Grid().Index(c)] {
			t.Errorf("%v should be reachable", c)
		}
	}
}

func TestConnectedToEdgeDiagonalNotEnough(t *testing.T) {
	// 4-connectivity only: a diagonal gap must not leak reachability.
	m, err := Parse(strings.TrimSpace(`
.....
.XXX.
.X.X.
.XXX.
.....`))
	if err != nil {
		t.Fatal(err)
	}
	reach := m.ConnectedToEdge()
	if reach[m.Grid().Index(geom.C(2, 2))] {
		t.Error("ring-enclosed tile must be unreachable under 4-connectivity")
	}
}

// TestReachabilityInductionProperty verifies the paper's induction
// argument (Section IV): the generated clock reaches every non-faulty
// tile unless the tile is disconnected from the edge by faulty tiles —
// in particular, any healthy tile with a healthy neighbor that is
// reachable is itself reachable.
func TestReachabilityInductionProperty(t *testing.T) {
	g := geom.NewGrid(16, 16)
	f := func(seed int64, nf uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(g, int(nf)%60, rng)
		reach := m.ConnectedToEdge()
		ok := true
		g.All(func(c geom.Coord) {
			if !m.Healthy(c) {
				if reach[g.Index(c)] {
					ok = false // faulty tiles never reachable
				}
				return
			}
			if g.OnEdge(c) && !reach[g.Index(c)] {
				ok = false // healthy edge tiles always reachable
			}
			for _, n := range c.Neighbors() {
				if g.In(n) && m.Healthy(n) && reach[g.Index(n)] && !reach[g.Index(c)] {
					ok = false // induction step violated
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCollectStats(t *testing.T) {
	s := Collect([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("stats = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if z := Collect(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty stats = %+v", z)
	}
	one := Collect([]float64{7})
	if one.StdDev != 0 || one.Mean != 7 {
		t.Errorf("single-sample stats = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 3, 2, 4}
	if got := Percentile(samples, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(samples, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(samples, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestMonteCarloDeterminism(t *testing.T) {
	mc := MonteCarlo{Grid: geom.NewGrid(16, 16), Trials: 32, Seed: 99}
	metric := func(m *Map) float64 { return float64(len(m.Isolated())) }
	a := mc.Samples(8, metric)
	b := mc.Samples(8, metric)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	// Different worker counts must not change results.
	for _, workers := range []int{1, 4} {
		mc.Workers = workers
		c := mc.Samples(8, metric)
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("trial %d differs with %d workers", i, workers)
			}
		}
	}
}

func TestMonteCarloSweep(t *testing.T) {
	mc := MonteCarlo{Grid: geom.NewGrid(8, 8), Trials: 16, Seed: 5}
	counts := []int{0, 4, 16}
	stats := mc.Sweep(counts, func(m *Map) float64 { return float64(m.Count()) })
	for i, st := range stats {
		if st.Mean != float64(counts[i]) {
			t.Errorf("sweep[%d] mean = %v, want %d", i, st.Mean, counts[i])
		}
	}
}

func TestMonteCarloZeroTrials(t *testing.T) {
	mc := MonteCarlo{Grid: geom.NewGrid(4, 4), Trials: 0, Seed: 1}
	if s := mc.Samples(2, func(*Map) float64 { return 1 }); s != nil {
		t.Errorf("zero trials should return nil, got %v", s)
	}
}

func TestFormatSweep(t *testing.T) {
	pts := []SweepPoint{{Faults: 5, Stats: Collect([]float64{1, 2, 3})}}
	s := FormatSweep(pts, "disc%")
	if !strings.Contains(s, "disc% mean") || !strings.Contains(s, "5") {
		t.Errorf("formatted sweep missing content:\n%s", s)
	}
}
