package chipio

import (
	"fmt"
	"math"

	"waferscale/internal/geom"
)

// SignalClass assigns an I/O to one of the two column sets of the
// single-layer-fallback floorplan (paper Section VIII): the first set —
// the two columns closest to the die edge, routable with one substrate
// layer — carries everything the system cannot live without; the second
// set needs the second routing layer.
type SignalClass int

// The signal classes.
const (
	// ClassEssential signals sit in the first I/O column set: all
	// network link I/Os plus two of the five memory banks.
	ClassEssential SignalClass = iota
	// ClassSecondary signals sit in the outer set: non-essential I/Os
	// and the remaining three memory banks.
	ClassSecondary
)

// String returns the class name.
func (c SignalClass) String() string {
	if c == ClassEssential {
		return "essential"
	}
	return "secondary"
}

// Pad is one bonded structure on a chiplet.
type Pad struct {
	Name     string
	Class    SignalClass
	Probe    bool       // larger duplicate pad for pre-bond probing only
	Center   geom.Point // location on the die, microns from die SW corner
	WidthUM  float64
	HeightUM float64
	Pillars  int // copper pillars landing on the pad (0 for probe pads)
}

// Area returns the pad area in um^2.
func (p Pad) Area() float64 { return p.WidthUM * p.HeightUM }

// PadRing plans the I/O structures of one chiplet.
type PadRing struct {
	DieWidthUM, DieHeightUM float64
	Pads                    []Pad
}

// RingConfig drives pad-ring generation.
type RingConfig struct {
	DieWidthMM, DieHeightMM float64
	SignalIOs               int     // fine-pitch signal pads
	EssentialFrac           float64 // fraction in the first column set
	ProbePads               int     // larger probe-only pads (JTAG + aux)
	PillarsPerPad           int
}

// BuildPadRing lays out the I/O structures of a chiplet:
//
//   - Fine-pitch pads are placed in column pairs along all four die
//     edges at the pillar pitch; each pad is 7 um wide and tall enough
//     for two pillars placed orthogonal to the die edge (Fig. 5), which
//     maximizes I/O density per mm of edge.
//   - The essential (first-set) columns sit closest to the edge; the
//     secondary set sits one column pair further in.
//   - Probe pads are placed in the die interior at the probe pitch.
func BuildPadRing(cfg RingConfig) (*PadRing, error) {
	if cfg.DieWidthMM <= 0 || cfg.DieHeightMM <= 0 {
		return nil, fmt.Errorf("chipio: non-positive die %gx%g mm", cfg.DieWidthMM, cfg.DieHeightMM)
	}
	if cfg.SignalIOs < 1 {
		return nil, fmt.Errorf("chipio: need at least one signal I/O")
	}
	if cfg.EssentialFrac < 0 || cfg.EssentialFrac > 1 {
		return nil, fmt.Errorf("chipio: essential fraction %g outside [0,1]", cfg.EssentialFrac)
	}
	if cfg.PillarsPerPad < 1 || cfg.PillarsPerPad > 2 {
		return nil, fmt.Errorf("chipio: %d pillars per pad unsupported (1 or 2)", cfg.PillarsPerPad)
	}
	w := cfg.DieWidthMM * 1000
	h := cfg.DieHeightMM * 1000
	ring := &PadRing{DieWidthUM: w, DieHeightUM: h}

	// Pad geometry: 7 um wide; two pillars at 10 um pitch orthogonal to
	// the edge need a 17 um tall pad; a single pillar needs 7 um.
	padW := PadWidthUM
	padH := PadWidthUM + float64(cfg.PillarsPerPad-1)*PillarPitchUM

	// Capacity per edge per column: one pad per pillar pitch.
	perCol := func(edgeLenUM float64) int { return int(edgeLenUM / PillarPitchUM) }
	// Edges in placement order: S, N (length w), W, E (length h).
	type edge struct {
		horizontal bool
		lenUM      float64
		at         float64 // the fixed coordinate of the die boundary
		inward     float64 // +1 if increasing coordinate moves into the die
	}
	edges := []edge{
		{true, w, 0, 1},   // south
		{true, w, h, -1},  // north
		{false, h, 0, 1},  // west
		{false, h, w, -1}, // east
	}

	nEss := int(math.Round(cfg.EssentialFrac * float64(cfg.SignalIOs)))
	placed := 0
	// Column sets: set 0 (essential) hugs the edge; set 1 (secondary)
	// is the next pair inward.
	for set := 0; set < 2 && placed < cfg.SignalIOs; set++ {
		for colPair := 0; colPair < 2 && placed < cfg.SignalIOs; colPair++ {
			colOffset := (float64(set*2+colPair) + 0.5) * (padH + 3)
			for _, e := range edges {
				n := perCol(e.lenUM)
				for i := 0; i < n && placed < cfg.SignalIOs; i++ {
					class := ClassEssential
					if placed >= nEss {
						class = ClassSecondary
					}
					// Essential pads must be in set 0; if the essential
					// budget spills into set 1 the config is infeasible,
					// checked below.
					pos := (float64(i) + 0.5) * PillarPitchUM
					var center geom.Point
					if e.horizontal {
						center = geom.Pt(pos, e.at+e.inward*colOffset)
					} else {
						center = geom.Pt(e.at+e.inward*colOffset, pos)
					}
					ring.Pads = append(ring.Pads, Pad{
						Name:     fmt.Sprintf("io%04d", placed),
						Class:    class,
						Center:   center,
						WidthUM:  padW,
						HeightUM: padH,
						Pillars:  cfg.PillarsPerPad,
					})
					placed++
				}
			}
		}
	}
	if placed < cfg.SignalIOs {
		return nil, fmt.Errorf("chipio: die perimeter fits only %d of %d I/Os in two column sets",
			placed, cfg.SignalIOs)
	}

	// Probe pads: larger duplicates for JTAG and auxiliary test signals,
	// placed in the interior at probe pitch (Fig. 8). They are probed
	// during KGD testing and never bonded.
	probeSize := 60.0
	for i := 0; i < cfg.ProbePads; i++ {
		x := 100 + float64(i%8)*ProbePadPitchUM*1.5
		y := h/2 + float64(i/8)*ProbePadPitchUM*1.5 - 100
		ring.Pads = append(ring.Pads, Pad{
			Name:     fmt.Sprintf("probe%02d", i),
			Class:    ClassEssential, // JTAG must work in the fallback too
			Probe:    true,
			Center:   geom.Pt(x, y),
			WidthUM:  probeSize,
			HeightUM: probeSize,
			Pillars:  0,
		})
	}
	return ring, nil
}

// SignalPads returns the bonded (non-probe) pads.
func (r *PadRing) SignalPads() []Pad {
	var out []Pad
	for _, p := range r.Pads {
		if !p.Probe {
			out = append(out, p)
		}
	}
	return out
}

// CountClass returns the number of bonded pads in a class.
func (r *PadRing) CountClass(c SignalClass) int {
	n := 0
	for _, p := range r.Pads {
		if !p.Probe && p.Class == c {
			n++
		}
	}
	return n
}

// TotalIOAreaMM2 returns the silicon area of all I/O structures —
// the paper's "total I/O area is only 0.4 mm^2" figure combines the
// transceiver cells under the signal pads with the probe pads.
func (r *PadRing) TotalIOAreaMM2(cell IOCell) float64 {
	var um2 float64
	for _, p := range r.Pads {
		if p.Probe {
			um2 += p.Area()
			continue
		}
		// The transceiver sits entirely under the pad; count whichever
		// footprint is larger.
		um2 += math.Max(p.Area(), cell.AreaUM2)
	}
	return um2 / 1e6
}

// EdgeDensityPerMM returns bonded I/Os per mm of die perimeter.
func (r *PadRing) EdgeDensityPerMM() float64 {
	per := 2 * (r.DieWidthUM + r.DieHeightUM) / 1000
	if per <= 0 {
		return 0
	}
	return float64(len(r.SignalPads())) / per
}

// FallbackReport describes what survives if only one substrate routing
// layer yields (paper Section VIII).
type FallbackReport struct {
	UsableIOs        int // essential-set pads still connected
	LostIOs          int // secondary-set pads with no routing layer
	SharedBanksKept  int // memory banks reachable (2 of 5)
	SharedBanksTotal int
	CapacityLossPct  float64 // shared-memory capacity reduction (60%)
	SystemAlive      bool    // network + >=1 bank still connected
}

// SingleLayerFallback evaluates the ring against the paper's fallback
// plan: the first column set (all network links + 2 of the 5 banks)
// routes on layer one; everything else is lost.
func (r *PadRing) SingleLayerFallback(banksTotal, banksEssential int) FallbackReport {
	rep := FallbackReport{
		UsableIOs:        r.CountClass(ClassEssential),
		LostIOs:          r.CountClass(ClassSecondary),
		SharedBanksKept:  banksEssential,
		SharedBanksTotal: banksTotal,
	}
	if banksTotal > 0 {
		rep.CapacityLossPct = 100 * float64(banksTotal-banksEssential) / float64(banksTotal)
	}
	rep.SystemAlive = rep.UsableIOs > 0 && banksEssential >= 1
	return rep
}

// ProbePadsProbeable verifies every probe pad sits at probe-card pitch
// from its nearest probe neighbor (the reason fine-pitch pads cannot be
// probed: probe pitch is >50 um while the signal pads sit at 10 um).
func (r *PadRing) ProbePadsProbeable() error {
	var probes []Pad
	for _, p := range r.Pads {
		if p.Probe {
			probes = append(probes, p)
		}
	}
	for i, a := range probes {
		for j, b := range probes {
			if i == j {
				continue
			}
			if d := a.Center.Manhattan(b.Center); d < ProbePadPitchUM {
				return fmt.Errorf("chipio: probe pads %s and %s only %.1f um apart (< %g um probe pitch)",
					a.Name, b.Name, d, ProbePadPitchUM)
			}
		}
	}
	return nil
}
