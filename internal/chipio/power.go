package chipio

// System-level I/O power budget: one reason waferscale integration wins
// (paper Section I — off-package links "have inferior bandwidth and
// energy efficiency compared to their on-chip counterparts"). With
// 0.063 pJ/bit Si-IF links, even the full 9.83 TB/s network bandwidth
// costs only a few watts of I/O power — a rounding error against the
// 725 W system budget, where conventional off-package SerDes at
// several pJ/bit would burn two orders of magnitude more.

// IOPowerBudget summarizes the interconnect energy picture.
type IOPowerBudget struct {
	BandwidthBps     float64 // payload bandwidth carried
	EnergyPerBitJ    float64
	PowerW           float64
	SystemBudgetW    float64
	FractionOfBudget float64
}

// ComputeIOPower evaluates the I/O power at a carried bandwidth.
func ComputeIOPower(cell IOCell, linkUM, bandwidthBps, systemBudgetW float64) IOPowerBudget {
	e := cell.EnergyPerBitJ(linkUM)
	p := bandwidthBps * 8 * e
	b := IOPowerBudget{
		BandwidthBps:  bandwidthBps,
		EnergyPerBitJ: e,
		PowerW:        p,
		SystemBudgetW: systemBudgetW,
	}
	if systemBudgetW > 0 {
		b.FractionOfBudget = p / systemBudgetW
	}
	return b
}

// ConventionalSerDesEnergyJ is a representative off-package link cost
// (~5 pJ/bit for short-reach SerDes of the era) used for the
// comparison the paper's introduction makes.
const ConventionalSerDesEnergyJ = 5e-12

// OffPackageComparison returns the power the same bandwidth would cost
// over conventional packaged links.
func OffPackageComparison(bandwidthBps float64) float64 {
	return bandwidthBps * 8 * ConventionalSerDesEnergyJ
}
