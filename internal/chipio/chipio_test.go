package chipio

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestSec5YieldHeadline reproduces the paper's Section V numbers: with
// over 2000 I/Os per chiplet at >99.99% per-pillar yield, going from
// one to two pillars per pad improves chiplet bonding yield from 81.46%
// to 99.998%, cutting the expected faulty chiplets on the 2048-chiplet
// wafer from 380 to about zero.
func TestSec5YieldHeadline(t *testing.T) {
	cmp := CompareRedundancy(0.9999, 2048, 2048)
	if math.Abs(cmp.SingleChipletYield-0.8146) > 0.002 {
		t.Errorf("single-pillar chiplet yield = %.4f, want ~0.8146", cmp.SingleChipletYield)
	}
	if math.Abs(cmp.DualChipletYield-0.99998) > 0.00001 {
		t.Errorf("dual-pillar chiplet yield = %.6f, want ~0.99998", cmp.DualChipletYield)
	}
	if math.Abs(cmp.SingleExpectedBad-380) > 3 {
		t.Errorf("single-pillar expected faulty = %.1f, want ~380", cmp.SingleExpectedBad)
	}
	if cmp.DualExpectedBad > 1 {
		t.Errorf("dual-pillar expected faulty = %.3f, want < 1", cmp.DualExpectedBad)
	}
}

func TestPadYieldMonotoneInRedundancy(t *testing.T) {
	f := func(pillars uint8) bool {
		n := int(pillars)%4 + 1
		a := BondConfig{PillarYield: 0.9999, PillarsPerPad: n, PadsPerChiplet: 2048}
		b := BondConfig{PillarYield: 0.9999, PillarsPerPad: n + 1, PadsPerChiplet: 2048}
		return b.PadYield() >= a.PadYield() && b.ChipletYield() >= a.ChipletYield()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBondConfigValidate(t *testing.T) {
	good := DefaultBond(2020)
	if err := good.Validate(); err != nil {
		t.Fatalf("default bond invalid: %v", err)
	}
	for _, bad := range []BondConfig{
		{PillarYield: 0, PillarsPerPad: 2, PadsPerChiplet: 10},
		{PillarYield: 1.5, PillarsPerPad: 2, PadsPerChiplet: 10},
		{PillarYield: 0.9999, PillarsPerPad: 0, PadsPerChiplet: 10},
		{PillarYield: 0.9999, PillarsPerPad: 2, PadsPerChiplet: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestPerfectPillarYield(t *testing.T) {
	b := BondConfig{PillarYield: 1, PillarsPerPad: 1, PadsPerChiplet: 100000}
	if b.ChipletYield() != 1 {
		t.Errorf("perfect pillars give chiplet yield %v", b.ChipletYield())
	}
	if b.ExpectedFaultyChiplets(2048) != 0 {
		t.Error("perfect yield should lose no chiplets")
	}
}

func TestTileLossProbability(t *testing.T) {
	compute := DefaultBond(2020)
	memory := DefaultBond(1250)
	p := TileLossProbability(compute, memory)
	want := 1 - compute.ChipletYield()*memory.ChipletYield()
	if p != want {
		t.Errorf("tile loss = %v, want %v", p, want)
	}
	if p <= 0 || p >= 1e-3 {
		t.Errorf("tile loss %v outside plausible range for dual pillars", p)
	}
	// Expected faulty tiles on the wafer stays well under one.
	if e := 1024 * p; e > 0.1 {
		t.Errorf("expected faulty tiles = %.3f", e)
	}
}

// TestSec5EnergyPerBit reproduces the 0.063 pJ/bit I/O energy figure
// at the worst-case 500 um link.
func TestSec5EnergyPerBit(t *testing.T) {
	cell := DefaultIOCell()
	e := cell.EnergyPerBitJ(500)
	if math.Abs(e-0.063e-12) > 0.002e-12 {
		t.Errorf("energy/bit = %.4g J, want ~0.063 pJ", e)
	}
	// Shorter Si-IF links (200-300 um) cost proportionally less.
	if e300 := cell.EnergyPerBitJ(300); math.Abs(e300-0.6*e) > 1e-18 {
		t.Errorf("energy not linear in length: %v vs %v", e300, 0.6*e)
	}
}

func TestIOCellDrive(t *testing.T) {
	cell := DefaultIOCell()
	if !cell.CanDrive(500, 1e9) {
		t.Error("must drive 500 um at 1 GHz (paper)")
	}
	if cell.CanDrive(600, 1e9) {
		t.Error("600 um at 1 GHz should exceed the envelope")
	}
	// Slower rates allow longer links.
	if !cell.CanDrive(1000, 500e6) {
		t.Error("1000 um at 500 MHz should be drivable")
	}
	if cell.CanDrive(500, 2e9) {
		t.Error("rate above the driver maximum accepted")
	}
	if cell.CanDrive(0, 1e9) || cell.CanDrive(500, 0) {
		t.Error("degenerate inputs accepted")
	}
}

func TestESDContexts(t *testing.T) {
	cell := DefaultIOCell()
	if !cell.MeetsESD(BareDieAssembly) {
		t.Error("cell must meet the 100 V bare-die class")
	}
	if cell.MeetsESD(PackagedPart) {
		t.Error("stripped-down ESD cannot meet the 2 kV packaged class")
	}
	if PackagedPart.RequiredESDV() != 2000 || BareDieAssembly.RequiredESDV() != 100 {
		t.Error("ESD requirements wrong")
	}
}

func computeRing(t *testing.T) *PadRing {
	t.Helper()
	ring, err := BuildPadRing(RingConfig{
		DieWidthMM:    3.15,
		DieHeightMM:   2.4,
		SignalIOs:     2020,
		EssentialFrac: 0.55,
		ProbePads:     40,
		PillarsPerPad: 2,
	})
	if err != nil {
		t.Fatalf("build ring: %v", err)
	}
	return ring
}

func TestPadRingCounts(t *testing.T) {
	ring := computeRing(t)
	if got := len(ring.SignalPads()); got != 2020 {
		t.Fatalf("signal pads = %d, want 2020", got)
	}
	ess := ring.CountClass(ClassEssential)
	sec := ring.CountClass(ClassSecondary)
	if ess+sec != 2020 {
		t.Errorf("class counts %d+%d != 2020", ess, sec)
	}
	if math.Abs(float64(ess)-0.55*2020) > 1 {
		t.Errorf("essential count = %d, want ~%d", ess, int(0.55*2020))
	}
	probes := 0
	for _, p := range ring.Pads {
		if p.Probe {
			probes++
			if p.Pillars != 0 {
				t.Errorf("probe pad %s has pillars; probed pads must not be bonded", p.Name)
			}
		} else if p.Pillars != 2 {
			t.Errorf("signal pad %s has %d pillars, want 2", p.Name, p.Pillars)
		}
	}
	if probes != 40 {
		t.Errorf("probe pads = %d, want 40", probes)
	}
}

// TestSec5IOArea reproduces the "total I/O area is only 0.4 mm^2"
// figure for the compute chiplet.
func TestSec5IOArea(t *testing.T) {
	ring := computeRing(t)
	area := ring.TotalIOAreaMM2(DefaultIOCell())
	if area < 0.3 || area > 0.5 {
		t.Errorf("total I/O area = %.3f mm^2, want ~0.4 mm^2", area)
	}
	// I/O area is a tiny fraction of the 7.56 mm^2 die.
	if frac := area / (3.15 * 2.4); frac > 0.07 {
		t.Errorf("I/O area fraction = %.3f, should be small", frac)
	}
}

func TestPadGeometryFig5(t *testing.T) {
	ring := computeRing(t)
	for _, p := range ring.SignalPads()[:10] {
		if p.WidthUM != 7 {
			t.Errorf("pad width = %g um, want 7", p.WidthUM)
		}
		// Two pillars at 10 um pitch orthogonal to the edge need a
		// taller-than-wide pad.
		if p.HeightUM <= p.WidthUM {
			t.Errorf("dual-pillar pad %s not elongated: %gx%g", p.Name, p.WidthUM, p.HeightUM)
		}
	}
}

func TestEdgeDensity(t *testing.T) {
	ring := computeRing(t)
	d := ring.EdgeDensityPerMM()
	// 2020 I/Os on a 11.1 mm perimeter in 4 column pairs: ~180/mm.
	if d < 100 || d > 400 {
		t.Errorf("edge density = %.0f I/Os per mm, implausible", d)
	}
}

func TestPadRingCapacityError(t *testing.T) {
	_, err := BuildPadRing(RingConfig{
		DieWidthMM: 0.2, DieHeightMM: 0.2,
		SignalIOs: 2020, EssentialFrac: 0.5, PillarsPerPad: 2,
	})
	if err == nil {
		t.Fatal("tiny die accepted 2020 I/Os")
	}
	if !strings.Contains(err.Error(), "fits only") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPadRingConfigErrors(t *testing.T) {
	base := RingConfig{DieWidthMM: 3, DieHeightMM: 2, SignalIOs: 100, EssentialFrac: 0.5, PillarsPerPad: 2}
	cases := []func(*RingConfig){
		func(c *RingConfig) { c.DieWidthMM = 0 },
		func(c *RingConfig) { c.SignalIOs = 0 },
		func(c *RingConfig) { c.EssentialFrac = 1.5 },
		func(c *RingConfig) { c.PillarsPerPad = 0 },
		func(c *RingConfig) { c.PillarsPerPad = 3 },
	}
	for i, mutate := range cases {
		c := base
		mutate(&c)
		if _, err := BuildPadRing(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestSec8SingleLayerFallback reproduces Section VIII: with one routing
// layer the system survives on the essential I/O set with 2 of 5 banks
// — a 60% shared-memory capacity reduction.
func TestSec8SingleLayerFallback(t *testing.T) {
	ring := computeRing(t)
	rep := ring.SingleLayerFallback(5, 2)
	if !rep.SystemAlive {
		t.Error("fallback system must stay alive")
	}
	if rep.CapacityLossPct != 60 {
		t.Errorf("capacity loss = %.0f%%, want 60%%", rep.CapacityLossPct)
	}
	if rep.SharedBanksKept != 2 || rep.SharedBanksTotal != 5 {
		t.Errorf("banks = %d/%d", rep.SharedBanksKept, rep.SharedBanksTotal)
	}
	if rep.UsableIOs == 0 || rep.LostIOs == 0 {
		t.Errorf("fallback I/O split = %d usable / %d lost", rep.UsableIOs, rep.LostIOs)
	}
	if rep.UsableIOs+rep.LostIOs != 2020 {
		t.Errorf("I/O split does not cover all pads")
	}
	// Degenerate: no banks at all.
	dead := ring.SingleLayerFallback(0, 0)
	if dead.SystemAlive {
		t.Error("no banks should not be alive")
	}
}

func TestProbePadsProbeable(t *testing.T) {
	ring := computeRing(t)
	if err := ring.ProbePadsProbeable(); err != nil {
		t.Errorf("probe plan not probeable: %v", err)
	}
}

func TestSignalClassString(t *testing.T) {
	if ClassEssential.String() != "essential" || ClassSecondary.String() != "secondary" {
		t.Error("class strings wrong")
	}
}

func TestMemoryChipletRing(t *testing.T) {
	ring, err := BuildPadRing(RingConfig{
		DieWidthMM:    3.15,
		DieHeightMM:   1.1,
		SignalIOs:     1250,
		EssentialFrac: 0.5,
		ProbePads:     24,
		PillarsPerPad: 2,
	})
	if err != nil {
		t.Fatalf("memory chiplet ring: %v", err)
	}
	if got := len(ring.SignalPads()); got != 1250 {
		t.Errorf("memory chiplet pads = %d, want 1250", got)
	}
}
