// Package chipio models the fine-pitch chiplet I/O architecture of the
// waferscale prototype (paper Section V and Figs. 5 and 8): small
// transceiver cells that fit entirely under the copper-pillar pad,
// stripped-down ESD for bare-die assembly, two pillars landing on every
// pad for bonding redundancy, larger duplicate probe pads for pre-bond
// testing, and the two-set I/O column arrangement that lets the system
// survive with a single substrate routing layer (Section VIII).
package chipio

import (
	"fmt"
	"math"
)

// IOCell describes the transmitter/receiver circuit of one signal I/O.
type IOCell struct {
	AreaUM2       float64 // cell area incl. ESD (paper: ~150 um^2)
	MaxRateHz     float64 // signaling rate the driver supports (paper: 1 GHz)
	MaxLinkUM     float64 // longest link drivable at MaxRateHz (paper: 500 um)
	SupplyVolts   float64 // I/O swing (logic supply, 1.1 V)
	WireCapFPerUM float64 // loaded link capacitance per micron
	ESDRatingV    float64 // HBM rating (paper: 100 V for bare-die assembly)
}

// DefaultIOCell returns the prototype's I/O cell.
func DefaultIOCell() IOCell {
	return IOCell{
		AreaUM2:       150,
		MaxRateHz:     1e9,
		MaxLinkUM:     500,
		SupplyVolts:   1.1,
		WireCapFPerUM: 0.104e-15,
		ESDRatingV:    100,
	}
}

// EnergyPerBitJ returns the switching energy for one bit over a link of
// the given length: E = C*V^2 with C the loaded wire capacitance (full
// rail-to-rail toggle). At the prototype's 500 um worst-case link this
// reproduces the paper's 0.063 pJ/bit.
func (c IOCell) EnergyPerBitJ(linkUM float64) float64 {
	return c.WireCapFPerUM * linkUM * c.SupplyVolts * c.SupplyVolts
}

// CanDrive reports whether the cell can signal at rateHz over linkUM.
// The drivable length scales inversely with rate (RC-limited settling).
func (c IOCell) CanDrive(linkUM, rateHz float64) bool {
	if linkUM <= 0 || rateHz <= 0 {
		return false
	}
	if rateHz > c.MaxRateHz {
		return false
	}
	return linkUM <= c.MaxLinkUM*(c.MaxRateHz/rateHz)
}

// ESDContext distinguishes packaged-part handling from bare-die
// chiplet-to-wafer bonding (the paper's justification for the
// stripped-down ESD network that lets the cell fit under the pad).
type ESDContext int

// The handling environments.
const (
	// PackagedPart must survive the 2 kV human-body model.
	PackagedPart ESDContext = iota
	// BareDieAssembly only faces the 100 V HBM/MM class (like silicon
	// interposers).
	BareDieAssembly
)

// RequiredESDV returns the HBM withstand voltage required by a context.
func (e ESDContext) RequiredESDV() float64 {
	if e == PackagedPart {
		return 2000
	}
	return 100
}

// MeetsESD reports whether the cell's rating covers the context.
func (c IOCell) MeetsESD(ctx ESDContext) bool {
	return c.ESDRatingV >= ctx.RequiredESDV()
}

// Pillar geometry of the Si-IF technology.
const (
	// PillarPitchUM is the copper-pillar pitch (minimum the technology
	// offers, and what the prototype uses).
	PillarPitchUM = 10.0
	// PadWidthUM is the fine-pitch I/O pad width (paper Section VII: 7 um).
	PadWidthUM = 7.0
	// ProbePadPitchUM is the minimum pitch probe cards can hit.
	ProbePadPitchUM = 50.0
)

// BondConfig describes the pillar redundancy scheme for one chiplet.
type BondConfig struct {
	PillarYield    float64 // probability one pillar bonds (paper: >0.9999)
	PillarsPerPad  int     // redundancy (prototype: 2)
	PadsPerChiplet int     // bonded fine-pitch pads
}

// DefaultBond returns the prototype's bonding configuration for a
// chiplet with the given pad count.
func DefaultBond(pads int) BondConfig {
	return BondConfig{PillarYield: 0.9999, PillarsPerPad: 2, PadsPerChiplet: pads}
}

// Validate checks the configuration.
func (b BondConfig) Validate() error {
	if b.PillarYield <= 0 || b.PillarYield > 1 {
		return fmt.Errorf("chipio: pillar yield %.6g outside (0,1]", b.PillarYield)
	}
	if b.PillarsPerPad < 1 {
		return fmt.Errorf("chipio: need at least one pillar per pad")
	}
	if b.PadsPerChiplet < 1 {
		return fmt.Errorf("chipio: need at least one pad")
	}
	return nil
}

// PadYield returns the probability a pad bonds: it fails only if every
// redundant pillar on it fails.
func (b BondConfig) PadYield() float64 {
	fail := math.Pow(1-b.PillarYield, float64(b.PillarsPerPad))
	return 1 - fail
}

// ChipletYield returns the probability every pad on the chiplet bonds.
// With one pillar per pad and ~2048 pads at 99.99% pillar yield this is
// the paper's 81.46%; with two pillars per pad it is 99.998%.
func (b BondConfig) ChipletYield() float64 {
	return math.Pow(b.PadYield(), float64(b.PadsPerChiplet))
}

// ExpectedFaultyChiplets returns the expected number of chiplets (out
// of total) that fail bonding — the paper's 380 -> ~0 improvement on
// the 2048-chiplet wafer.
func (b BondConfig) ExpectedFaultyChiplets(total int) float64 {
	return float64(total) * (1 - b.ChipletYield())
}

// TileLossProbability returns the probability that a tile is lost to
// bonding faults, given the bond configurations of its two chiplets: a
// tile dies if either chiplet fails to bond.
func TileLossProbability(compute, memory BondConfig) float64 {
	return 1 - compute.ChipletYield()*memory.ChipletYield()
}

// YieldComparison is the Section V headline: single- versus dual-pillar
// bonding for a whole wafer.
type YieldComparison struct {
	SinglePadYield     float64
	DualPadYield       float64
	SingleChipletYield float64
	DualChipletYield   float64
	SingleExpectedBad  float64
	DualExpectedBad    float64
}

// CompareRedundancy computes the comparison for a chiplet with pads
// bonded pads on a wafer of totalChiplets.
func CompareRedundancy(pillarYield float64, pads, totalChiplets int) YieldComparison {
	single := BondConfig{PillarYield: pillarYield, PillarsPerPad: 1, PadsPerChiplet: pads}
	dual := BondConfig{PillarYield: pillarYield, PillarsPerPad: 2, PadsPerChiplet: pads}
	return YieldComparison{
		SinglePadYield:     single.PadYield(),
		DualPadYield:       dual.PadYield(),
		SingleChipletYield: single.ChipletYield(),
		DualChipletYield:   dual.ChipletYield(),
		SingleExpectedBad:  single.ExpectedFaultyChiplets(totalChiplets),
		DualExpectedBad:    dual.ExpectedFaultyChiplets(totalChiplets),
	}
}
