package chipio

import (
	"math"
	"testing"
)

// TestIOPowerAtFullNetworkBandwidth: carrying the Table I 9.83 TB/s at
// 0.063 pJ/bit costs ~5 W — under 1% of the 725 W budget.
func TestIOPowerAtFullNetworkBandwidth(t *testing.T) {
	b := ComputeIOPower(DefaultIOCell(), 500, 9.83e12, 725)
	if b.PowerW < 3 || b.PowerW > 8 {
		t.Errorf("I/O power = %.2f W, want ~5 W", b.PowerW)
	}
	if b.FractionOfBudget > 0.01 {
		t.Errorf("I/O power fraction = %.4f, want <1%%", b.FractionOfBudget)
	}
	if math.Abs(b.EnergyPerBitJ-0.063e-12) > 0.002e-12 {
		t.Errorf("energy per bit = %v", b.EnergyPerBitJ)
	}
}

// TestOffPackageComparison: the same bandwidth over conventional links
// would cost ~80x more — the paper's Section I motivation quantified.
func TestOffPackageComparison(t *testing.T) {
	siIF := ComputeIOPower(DefaultIOCell(), 500, 9.83e12, 725).PowerW
	serdes := OffPackageComparison(9.83e12)
	ratio := serdes / siIF
	if ratio < 50 || ratio > 120 {
		t.Errorf("off-package penalty = %.0fx, want ~80x", ratio)
	}
	// And it would no longer be a rounding error: several hundred watts.
	if serdes < 300 {
		t.Errorf("conventional links cost %.0f W, expected hundreds", serdes)
	}
}

func TestIOPowerZeroBudget(t *testing.T) {
	b := ComputeIOPower(DefaultIOCell(), 500, 1e12, 0)
	if b.FractionOfBudget != 0 {
		t.Error("zero budget should yield zero fraction")
	}
}
