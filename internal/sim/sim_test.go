package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
)

// smallConfig returns a 4x4-tile, 4-core machine configuration — big
// enough to exercise remote traffic, small enough for fast tests.
func smallConfig() arch.Config {
	cfg := arch.DefaultConfig()
	cfg.TilesX, cfg.TilesY = 4, 4
	cfg.CoresPerTile = 4
	cfg.JTAGChains = 4
	return cfg
}

func newMachine(t *testing.T, cfg arch.Config, fm *fault.Map) *Machine {
	t.Helper()
	if fm == nil {
		fm = fault.NewMap(cfg.Grid())
	}
	m, err := NewMachine(cfg, fm)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustAssemble(t *testing.T, src string) []uint32 {
	t.Helper()
	words, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return words
}

func TestInstrEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int16) bool {
		in := Instr{
			Op:  Op(op) % opCount,
			Rd:  int(rd) % 16,
			Rs1: int(rs1) % 16,
			Rs2: int(rs2) % 16,
		}
		if in.Op == OpLI || in.Op == OpLUI || in.Op == OpOrLo {
			in.Imm = int32(imm)
			out := Decode(in.Encode())
			return out.Op == in.Op && out.Rd == in.Rd && out.Imm == in.Imm
		}
		in.Imm = int32(imm) % 2048
		out := Decode(in.Encode())
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpLI, Rd: 3, Imm: -7}, "li r3, -7"},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpLw, Rd: 4, Rs1: 5, Imm: 8}, "lw r4, 8(r5)"},
		{Instr{Op: OpSw, Rs2: 4, Rs1: 5, Imm: 8}, "sw r4, 8(r5)"},
		{Instr{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -3}, "beq r1, r2, -3"},
		{Instr{Op: OpAmoAdd, Rd: 1, Rs2: 2, Rs1: 3}, "amoadd r1, r2, (r3)"},
		{Instr{Op: OpCoreID, Rd: 9}, "coreid r9"},
		{Instr{Op: OpJr, Rs1: 7}, "jr r7"},
		{Instr{Op: OpJal, Rd: 1, Imm: 5}, "jal r1, 5"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if Op(200).String() != "op200" {
		t.Error("unknown op string")
	}
}

func TestAssembleBasics(t *testing.T) {
	words := mustAssemble(t, `
		; simple arithmetic
		li   r1, 10
		li   r2, 32
		add  r3, r1, r2
		halt
	`)
	if len(words) != 4 {
		t.Fatalf("words = %d", len(words))
	}
	if in := Decode(words[2]); in.Op != OpAdd || in.Rd != 3 {
		t.Errorf("instr 2 = %v", in)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	words := mustAssemble(t, `
		li r1, 0
		li r2, 5
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	in := Decode(words[3])
	if in.Op != OpBlt || in.Imm != -2 {
		t.Errorf("branch = %v, want blt imm -2", in)
	}
}

func TestAssembleLA(t *testing.T) {
	words := mustAssemble(t, "la r1, 0x8000F004\nhalt")
	if len(words) != 3 {
		t.Fatalf("la should expand to 2 instructions, got %d total", len(words))
	}
	if in := Decode(words[0]); in.Op != OpLUI {
		t.Errorf("first = %v", in)
	}
	if in := Decode(words[1]); in.Op != OpOrLo {
		t.Errorf("second = %v", in)
	}
	// la of a small value needs no orlo when low half is zero.
	words = mustAssemble(t, "la r1, 0x10000\nhalt")
	if len(words) != 2 {
		t.Errorf("la 0x10000 should be one lui, got %d words", len(words)-1)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"li r99, 1",
		"li r1",
		"li r1, 999999",
		"addi r1, r2, 9999",
		"lw r1, 8",
		"beq r1, r2, nowhere",
		"dup: nop\ndup: nop",
		"lw r1, 99999(r2)",
		"la r1",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestMachineArithmetic(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	prog := mustAssemble(t, `
		li  r1, 6
		li  r2, 7
		mul r3, r1, r2
		sub r4, r3, r1    ; 36
		xor r5, r3, r3    ; 0
		halt
	`)
	tile := geom.C(0, 0)
	if err := m.LoadProgram(tile, 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	c := m.Tile(tile).Cores[0]
	if c.Regs[3] != 42 || c.Regs[4] != 36 || c.Regs[5] != 0 {
		t.Errorf("regs = %v", c.Regs[:6])
	}
	if c.Instret != 6 {
		t.Errorf("instret = %d", c.Instret)
	}
}

func TestR0HardwiredZero(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	prog := mustAssemble(t, `
		li  r0, 99
		add r1, r0, r0
		halt
	`)
	if err := m.LoadProgram(geom.C(0, 0), 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	c := m.Tile(geom.C(0, 0)).Cores[0]
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay zero", c.Regs[0], c.Regs[1])
	}
}

func TestPrivateMemory(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	prog := mustAssemble(t, `
		la  r1, 0x8000     ; private scratch
		li  r2, 1234
		sw  r2, 0(r1)
		lw  r3, 4(r1)      ; zero
		lw  r4, 0(r1)      ; 1234
		halt
	`)
	if err := m.LoadProgram(geom.C(1, 1), 2, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	c := m.Tile(geom.C(1, 1)).Cores[2]
	if c.Regs[4] != 1234 || c.Regs[3] != 0 {
		t.Errorf("regs = %v", c.Regs[:5])
	}
}

func TestLocalBank(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	prog := mustAssemble(t, `
		la  r1, 0x40000000 ; tile-local bank
		li  r2, 777
		sw  r2, 64(r1)
		lw  r3, 64(r1)
		halt
	`)
	if err := m.LoadProgram(geom.C(2, 2), 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c := m.Tile(geom.C(2, 2)).Cores[0]; c.Regs[3] != 777 {
		t.Errorf("local bank readback = %d", c.Regs[3])
	}
}

func TestOwnTileGlobalAccess(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	// Tile (1,0) is tile index 1; its global window starts at
	// GlobalBase + 1*512KiB.
	addr := arch.GlobalBase + uint32(cfg.SharedMemPerTile())
	prog := mustAssemble(t, `
		la  r1, 0x80080000 ; tile 1's window (512 KiB = 0x80000)
		li  r2, 555
		sw  r2, 0(r1)
		lw  r3, 0(r1)
		halt
	`)
	if err := m.LoadProgram(geom.C(1, 0), 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c := m.Tile(geom.C(1, 0)).Cores[0]; c.Regs[3] != 555 {
		t.Errorf("own-global readback = %d", c.Regs[3])
	}
	// And the host backdoor sees the same word.
	v, err := m.ReadGlobal32(addr)
	if err != nil || v != 555 {
		t.Errorf("host read = %d, %v", v, err)
	}
}

func TestRemoteGlobalAccess(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	// Core on tile (3,3) writes into tile (0,0)'s window and reads back.
	prog := mustAssemble(t, `
		la  r1, 0x80000000
		li  r2, 9999
		sw  r2, 128(r1)
		lw  r3, 128(r1)
		halt
	`)
	if err := m.LoadProgram(geom.C(3, 3), 1, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5000); err != nil {
		t.Fatal(err)
	}
	c := m.Tile(geom.C(3, 3)).Cores[1]
	if c.Regs[3] != 9999 {
		t.Errorf("remote readback = %d", c.Regs[3])
	}
	if m.RemoteRequests != 2 {
		t.Errorf("remote requests = %d, want 2", m.RemoteRequests)
	}
	if m.AvgRemoteLatency() <= 0 {
		t.Error("remote latency not recorded")
	}
	// Host sees the store.
	if v, _ := m.ReadGlobal32(arch.GlobalBase + 128); v != 9999 {
		t.Errorf("host sees %d", v)
	}
}

// TestRemoteLatencyGrowsWithDistance: the unified memory is NUMA — a
// farther tile costs more cycles per access.
func TestRemoteLatencyGrowsWithDistance(t *testing.T) {
	cfg := smallConfig()
	measure := func(from geom.Coord) float64 {
		m := newMachine(t, cfg, nil)
		prog := mustAssemble(t, `
			la  r1, 0x80000000
			lw  r2, 0(r1)
			lw  r3, 4(r1)
			lw  r4, 8(r1)
			halt
		`)
		if err := m.LoadProgram(from, 0, prog); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(5000); err != nil {
			t.Fatal(err)
		}
		return m.AvgRemoteLatency()
	}
	near := measure(geom.C(1, 0))
	far := measure(geom.C(3, 3))
	if far <= near {
		t.Errorf("far latency %.1f <= near latency %.1f", far, near)
	}
}

func TestCoreIDAndNCores(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	prog := mustAssemble(t, "coreid r1\nncores r2\nhalt")
	if err := m.LoadProgram(geom.C(1, 0), 3, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	c := m.Tile(geom.C(1, 0)).Cores[3]
	// Tile (1,0) is index 1; 1*4 + 3 = 7.
	if c.Regs[1] != 7 {
		t.Errorf("coreid = %d, want 7", c.Regs[1])
	}
	if c.Regs[2] != uint32(cfg.TotalCores()) {
		t.Errorf("ncores = %d", c.Regs[2])
	}
}

func TestFaultsTrapped(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unaligned", "la r1, 0x40000002\nlw r2, 0(r1)\nhalt", "unaligned"},
		{"unmapped", "la r1, 0x20000000\nlw r2, 0(r1)\nhalt", "unmapped"},
		{"runaway pc", "jr r1", ""}, // jr to 0 loops; use bad target
	}
	for _, tc := range cases[:2] {
		t.Run(tc.name, func(t *testing.T) {
			m := newMachine(t, smallConfig(), nil)
			if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, tc.src)); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(1000); err != nil {
				t.Fatal(err)
			}
			faults := m.Faults()
			if len(faults) != 1 || !strings.Contains(faults[0].Error(), tc.want) {
				t.Errorf("faults = %v, want %q", faults, tc.want)
			}
		})
	}
}

func TestIllegalOpcodeFaults(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	if err := m.LoadProgram(geom.C(0, 0), 0, []uint32{0xFF000000}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Faults()) != 1 {
		t.Error("illegal opcode not trapped")
	}
}

// TestAmoAtomicAcrossCores: every core of a tile atomically increments
// a shared counter many times; the total must be exact.
func TestAmoAtomicAcrossCores(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	prog := mustAssemble(t, `
		la  r1, 0x80000040  ; counter in tile 0's window
		li  r2, 1
		li  r3, 0
		li  r4, 100
	loop:
		amoadd r5, r2, (r1)
		addi r3, r3, 1
		blt r3, r4, loop
		halt
	`)
	// All 4 cores of two different tiles — mixes own-tile and remote
	// atomics.
	for _, tile := range []geom.Coord{geom.C(0, 0), geom.C(2, 1)} {
		for core := 0; core < 4; core++ {
			if err := m.LoadProgram(tile, core, prog); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Run(400000); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadGlobal32(arch.GlobalBase + 0x40)
	if err != nil {
		t.Fatal(err)
	}
	if v != 800 {
		t.Errorf("counter = %d, want 800 (atomicity violated)", v)
	}
}

func TestAmoMin(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	if err := m.WriteGlobal32(arch.GlobalBase+8, 50); err != nil {
		t.Fatal(err)
	}
	prog := mustAssemble(t, `
		la  r1, 0x80000008
		li  r2, 30
		amomin r3, r2, (r1)  ; 30 < 50: store 30, r3 = 50
		li  r2, 40
		amomin r4, r2, (r1)  ; 40 >= 30: no store, r4 = 30
		halt
	`)
	if err := m.LoadProgram(geom.C(0, 0), 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	c := m.Tile(geom.C(0, 0)).Cores[0]
	if c.Regs[3] != 50 || c.Regs[4] != 30 {
		t.Errorf("amomin returns = %d, %d", c.Regs[3], c.Regs[4])
	}
	if v, _ := m.ReadGlobal32(arch.GlobalBase + 8); v != 30 {
		t.Errorf("final value = %d", v)
	}
}

// TestBankConflictsCounted: two cores hammering the same bank must
// collide on the single-ported crossbar.
func TestBankConflictsCounted(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	prog := mustAssemble(t, `
		la  r1, 0x40000000
		li  r2, 0
		li  r3, 200
	loop:
		lw  r4, 0(r1)
		addi r2, r2, 1
		blt r2, r3, loop
		halt
	`)
	for core := 0; core < 4; core++ {
		if err := m.LoadProgram(geom.C(0, 0), core, prog); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.BankConflicts == 0 {
		t.Error("no bank conflicts recorded under 4-way contention")
	}
}

func TestMachineRejectsBadConfigs(t *testing.T) {
	cfg := smallConfig()
	cfg.TilesX = 0
	if _, err := NewMachine(cfg, fault.NewMap(geom.NewGrid(4, 4))); err == nil {
		t.Error("invalid config accepted")
	}
	cfg = smallConfig()
	if _, err := NewMachine(cfg, fault.NewMap(geom.NewGrid(8, 8))); err == nil {
		t.Error("mismatched grid accepted")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	if err := m.LoadProgram(geom.C(9, 9), 0, []uint32{0}); err == nil {
		t.Error("off-grid tile accepted")
	}
	if err := m.LoadProgram(geom.C(0, 0), 99, []uint32{0}); err == nil {
		t.Error("bad core accepted")
	}
	huge := make([]uint32, 64<<10/4+1)
	if err := m.LoadProgram(geom.C(0, 0), 0, huge); err == nil {
		t.Error("oversize program accepted")
	}
	fm := fault.NewMap(geom.NewGrid(4, 4))
	fm.MarkFaulty(geom.C(1, 1))
	m = newMachine(t, smallConfig(), fm)
	if err := m.LoadProgram(geom.C(1, 1), 0, []uint32{0}); err == nil {
		t.Error("faulty tile accepted")
	}
}

func TestHostBackdoorErrors(t *testing.T) {
	fm := fault.NewMap(geom.NewGrid(4, 4))
	fm.MarkFaulty(geom.C(1, 0)) // tile index 1
	m := newMachine(t, smallConfig(), fm)
	badAddr := arch.GlobalBase + uint32(smallConfig().SharedMemPerTile()) // tile 1's window
	if _, err := m.ReadGlobal32(badAddr); err == nil {
		t.Error("read from faulty tile accepted")
	}
	if err := m.WriteGlobal32(badAddr, 1); err == nil {
		t.Error("write to faulty tile accepted")
	}
	if _, err := m.ReadGlobal32(0x1000); err == nil {
		t.Error("non-global read accepted")
	}
	if err := m.WritePrivate32(geom.C(0, 0), 0, 3, 1); err == nil {
		t.Error("unaligned private write accepted")
	}
	if _, err := m.ReadPrivate32(geom.C(0, 0), 0, 1<<20); err == nil {
		t.Error("out-of-range private read accepted")
	}
}

func TestGraphGenerators(t *testing.T) {
	g := RandomGraph(50, 150, 9, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 50 || g.M() < 50 {
		t.Errorf("graph shape: n=%d m=%d", g.N, g.M())
	}
	// Determinism.
	g2 := RandomGraph(50, 150, 9, 42)
	if g2.M() != g.M() {
		t.Error("random graph not deterministic")
	}
	grid := GridGraph(5, 4)
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	if grid.N != 20 || grid.M() != 2*(4*4+5*3) {
		t.Errorf("grid graph: n=%d m=%d", grid.N, grid.M())
	}
}

func TestReferenceSSSPOnGrid(t *testing.T) {
	g := GridGraph(4, 4)
	dist := g.ReferenceSSSP(0)
	// Distance on a grid is the Manhattan distance.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if int(dist[y*4+x]) != x+y {
				t.Errorf("dist[%d,%d] = %d, want %d", x, y, dist[y*4+x], x+y)
			}
		}
	}
}

func TestReverseCSR(t *testing.T) {
	g := RandomGraph(20, 40, 5, 7)
	rev := g.ReverseCSR()
	if rev.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", rev.M(), g.M())
	}
	// Every edge (u,v,w) appears as (v,u,w) in the reverse.
	type key struct{ u, v, w int32 }
	fwd := map[key]int{}
	for u := 0; u < g.N; u++ {
		for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
			fwd[key{int32(u), g.ColIdx[e], g.Weight[e]}]++
		}
	}
	for v := 0; v < rev.N; v++ {
		for e := rev.RowPtr[v]; e < rev.RowPtr[v+1]; e++ {
			k := key{rev.ColIdx[e], int32(v), rev.Weight[e]}
			if fwd[k] == 0 {
				t.Fatalf("reverse edge %v has no forward counterpart", k)
			}
			fwd[k]--
		}
	}
}

// TestE1BFSOnMachine is the headline workload check: BFS run as a real
// WS-ISA program on the simulated multi-tile machine matches the host
// reference — the paper's FPGA-emulation validation, reproduced.
func TestE1BFSOnMachine(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	g := GridGraph(6, 6)
	workers := AllWorkers(m, 8)
	res, err := RunBFS(m, g, 0, workers, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Unweighted().ReferenceSSSP(0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
	if res.Cycles <= 0 || res.Instructions <= 0 || res.RemoteOps <= 0 {
		t.Errorf("stats not populated: %+v", res)
	}
}

// TestE1SSSPOnMachine: weighted shortest paths on a random graph.
func TestE1SSSPOnMachine(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	g := RandomGraph(40, 120, 9, 2021)
	workers := AllWorkers(m, 8)
	res, err := RunSSSP(m, g, 3, workers, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := g.ReferenceSSSP(3)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("SSSP dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}

// TestE1SSSPWithFaultyTiles: the workload still runs (and is correct)
// on a wafer with faulty tiles, as long as the arrays and workers sit
// on healthy, direct-reachable tiles.
func TestE1SSSPWithFaultyTiles(t *testing.T) {
	cfg := smallConfig()
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(2, 2))
	m := newMachine(t, cfg, fm)
	g := GridGraph(5, 5)
	workers := []WorkerRef{
		{Tile: geom.C(0, 0), Core: 0},
		{Tile: geom.C(1, 0), Core: 0},
		{Tile: geom.C(0, 1), Core: 1},
		{Tile: geom.C(3, 3), Core: 2},
	}
	res, err := RunSSSP(m, g, 0, workers, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := g.ReferenceSSSP(0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
}

// TestMoreWorkersFasterWallClock: parallel speedup — more workers
// finish the same graph in fewer cycles.
func TestMoreWorkersFasterWallClock(t *testing.T) {
	g := GridGraph(6, 6)
	run := func(nWorkers int) int64 {
		m := newMachine(t, smallConfig(), nil)
		res, err := RunBFS(m, g, 0, AllWorkers(m, nWorkers), 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	one := run(1)
	eight := run(8)
	if eight >= one {
		t.Errorf("8 workers (%d cycles) not faster than 1 (%d cycles)", eight, one)
	}
}

func TestRunSSSPValidation(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	g := GridGraph(3, 3)
	if _, err := RunSSSP(m, g, -1, AllWorkers(m, 2), 1000); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := RunSSSP(m, g, 0, nil, 1000); err == nil {
		t.Error("no workers accepted")
	}
	bad := &Graph{N: 2, RowPtr: []int32{0}, ColIdx: nil, Weight: nil}
	if _, err := RunSSSP(m, bad, 0, AllWorkers(m, 1), 1000); err == nil {
		t.Error("malformed graph accepted")
	}
}

func TestAllWorkers(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	all := AllWorkers(m, 0)
	if len(all) != 16*4 {
		t.Errorf("workers = %d, want 64", len(all))
	}
	some := AllWorkers(m, 5)
	if len(some) != 5 {
		t.Errorf("capped workers = %d", len(some))
	}
	fm := fault.NewMap(geom.NewGrid(4, 4))
	fm.MarkFaulty(geom.C(0, 0))
	m2 := newMachine(t, smallConfig(), fm)
	if got := len(AllWorkers(m2, 0)); got != 15*4 {
		t.Errorf("workers with faulty tile = %d, want 60", got)
	}
}

// TestAssembleDisassembleRoundTrip: disassembling any encodable
// instruction and re-assembling it reproduces the same word — the
// assembler and the String forms agree.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int16) bool {
		in := Instr{
			Op:  Op(op) % opCount,
			Rd:  int(rd) % 16,
			Rs1: int(rs1) % 16,
			Rs2: int(rs2) % 16,
			Imm: int32(imm) % 2048,
		}
		// Zero the fields each operand class does not carry in its
		// textual form, so the comparison is against the canonical
		// encoding.
		switch in.Op {
		case OpNop, OpHalt:
			in = Instr{Op: in.Op}
		case OpLI, OpLUI, OpOrLo:
			in.Imm = int32(imm)
			in.Rs1, in.Rs2 = 0, 0
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt, OpSltu:
			in.Imm = 0
		case OpAddi, OpLw:
			in.Rs2 = 0
		case OpSw, OpBeq, OpBne, OpBlt, OpBge:
			in.Rd = 0
		case OpJal:
			in.Rs1, in.Rs2 = 0, 0
		case OpJr:
			in.Rd, in.Rs2, in.Imm = 0, 0, 0
		case OpCoreID, OpNCores:
			in.Rs1, in.Rs2, in.Imm = 0, 0, 0
		case OpAmoAdd, OpAmoMin:
			in.Imm = 0
		}
		words, err := Assemble(in.String())
		if err != nil {
			return false
		}
		return len(words) == 1 && words[0] == in.Encode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAssembleNeverPanics: arbitrary garbage must produce errors, not
// panics.
func TestAssembleNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("Assemble panicked on %q", src)
			}
		}()
		_, _ = Assemble(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// And some adversarial near-valid inputs.
	for _, src := range []string{
		":", "::", "a:b:", "lw r1, (r2", "li r1, 0x", "beq r1, r2,",
		"la r1, -0x80000000", "sw r1, -(r2)", "amoadd r1, r2, r3",
		"\x00\x01", "loop: beq r0, r0, loop",
	} {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("Assemble panicked on %q", src)
				}
			}()
			_, _ = Assemble(src)
		}()
	}
}

// TestMachineDeterminism: two machines running the identical workload
// produce identical cycle counts, instruction counts and results — the
// property every seeded analysis in this repository depends on.
func TestMachineDeterminism(t *testing.T) {
	run := func() (int64, int64, []int32) {
		m := newMachine(t, smallConfig(), nil)
		g := RandomGraph(40, 100, 7, 77)
		res, err := RunSSSP(m, g, 0, SpreadWorkers(m, 9), 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, res.Instructions, res.Dist
	}
	c1, i1, d1 := run()
	c2, i2, d2 := run()
	if c1 != c2 || i1 != i2 {
		t.Errorf("non-deterministic execution: cycles %d/%d instret %d/%d", c1, c2, i1, i2)
	}
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("dist[%d] differs: %d vs %d", v, d1[v], d2[v])
		}
	}
}
