package sim

import (
	"context"
	"errors"
	"testing"

	"waferscale/internal/geom"
)

// TestRunCtxTerminalProgressOnHalt: a run that quiesces far inside a
// progress stride must still end with a Progress call reporting the
// final cycle — short runs used to emit no progress at all, and long
// ones left the stream stale by up to runProgressStride-1 cycles.
func TestRunCtxTerminalProgressOnHalt(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	defer m.Close()
	if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, "li r1, 3\nhalt")); err != nil {
		t.Fatal(err)
	}
	var ticks []int64
	m.Progress = func(c int64) { ticks = append(ticks, c) }
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("no Progress call on a halting run")
	}
	if got := ticks[len(ticks)-1]; got != m.Cycle() {
		t.Errorf("last Progress tick = %d, machine halted at %d", got, m.Cycle())
	}
}

// TestRunCtxTerminalProgressOnBudget: budget expiry must also close the
// stream with the terminal cycle, for budgets both below and above one
// stride.
func TestRunCtxTerminalProgressOnBudget(t *testing.T) {
	for _, budget := range []int64{100, int64(runProgressStride) + 512} {
		m := newMachine(t, smallConfig(), nil)
		// A spin loop that never halts.
		if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, "spin: jal r0, spin")); err != nil {
			t.Fatal(err)
		}
		var last int64 = -1
		m.Progress = func(c int64) { last = c }
		err := m.Run(budget)
		var be *BudgetError
		if !errors.As(err, &be) || be.Cycles != budget {
			t.Fatalf("budget %d: err = %v, want BudgetError", budget, err)
		}
		if last != m.Cycle() {
			t.Errorf("budget %d: last Progress tick = %d, machine paused at %d", budget, last, m.Cycle())
		}
		m.Close()
	}
}

// TestRunCtxTerminalProgressOnCancel: a cancelled run's final Progress
// value is the cycle the machine paused at.
func TestRunCtxTerminalProgressOnCancel(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	defer m.Close()
	if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, "spin: jal r0, spin")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var last int64 = -1
	m.Progress = func(c int64) {
		last = c
		cancel() // cancel at the first stride check
	}
	err := m.RunCtx(ctx, 10*int64(runProgressStride))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if last != m.Cycle() {
		t.Errorf("last Progress tick = %d, machine paused at %d", last, m.Cycle())
	}
}

// TestRunToCycleCtxStopsAtTarget pins the prefix-advancement contract:
// reaching the target cycle without quiescing returns nil, the machine
// sits exactly at the target, and a target at or behind the current
// cycle is a no-op that still emits a terminal tick.
func TestRunToCycleCtxStopsAtTarget(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	defer m.Close()
	if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, "spin: jal r0, spin")); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToCycleCtx(context.Background(), 777); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 777 {
		t.Fatalf("cycle = %d, want 777", m.Cycle())
	}
	var last int64 = -1
	m.Progress = func(c int64) { last = c }
	if err := m.RunToCycleCtx(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 777 {
		t.Fatalf("backwards target moved the machine to %d", m.Cycle())
	}
	if last != 777 {
		t.Errorf("no-op run's terminal tick = %d, want 777", last)
	}
}
