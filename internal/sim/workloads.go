package sim

import (
	"fmt"
	"math/rand"

	"waferscale/internal/arch"
)

// Beyond the graph kernels, the paper's introduction motivates the
// machine with "highly parallel workloads such as graph processing,
// data analytics, and machine learning". Two more kernels cover the
// other two classes:
//
//   - MatVec (ML stand-in): y = A*x over a dense matrix in shared
//     memory; each worker owns strided rows, so the kernel is
//     embarrassingly parallel with heavy remote-read traffic.
//   - Histogram (analytics stand-in): workers scan strided slices of a
//     data array and count into shared bins with amoadd — an
//     atomics-heavy contention pattern.

// MatVecKernelSource is the WS-ISA dense matrix-vector product.
// Control block: +0 n, +4 workers, +8 &A, +12 &x, +16 &y.
const MatVecKernelSource = `
; y = A*x, rows strided across workers.
start:
    la   r1, 0xF000
    lw   r2, 0(r1)        ; worker id = starting row
    lw   r3, 4(r1)        ; ctrl
    la   r1, 0xF100
    lw   r4, 0(r3)
    sw   r4, 8(r1)        ; n
    lw   r4, 4(r3)
    sw   r4, 12(r1)       ; W
    lw   r4, 8(r3)
    sw   r4, 16(r1)       ; A
    lw   r4, 12(r3)
    sw   r4, 20(r1)       ; x
    lw   r4, 16(r3)
    sw   r4, 24(r1)       ; y
rloop:
    lw   r3, 8(r1)
    bge  r2, r3, done     ; row >= n
    li   r5, 0            ; acc
    lw   r4, 8(r1)
    mul  r6, r2, r4       ; row*n
    li   r7, 4
    mul  r6, r6, r7
    lw   r4, 16(r1)
    add  r6, r6, r4       ; &A[row][0]
    li   r8, 0            ; j
jloop:
    lw   r3, 8(r1)
    bge  r8, r3, jdone
    lw   r9, 0(r6)        ; A[row][j]
    li   r7, 4
    mul  r10, r8, r7
    lw   r11, 20(r1)
    add  r10, r10, r11
    lw   r10, 0(r10)      ; x[j]
    mul  r9, r9, r10
    add  r5, r5, r9
    addi r6, r6, 4
    addi r8, r8, 1
    beq  r0, r0, jloop
jdone:
    li   r7, 4
    mul  r9, r2, r7
    lw   r10, 24(r1)
    add  r9, r9, r10
    sw   r5, 0(r9)        ; y[row] = acc
    lw   r3, 12(r1)
    add  r2, r2, r3       ; row += W
    beq  r0, r0, rloop
done:
    halt
`

// HistogramKernelSource counts bin occurrences with shared atomics.
// Control block: +0 nData, +4 workers, +8 &data, +12 &bins.
const HistogramKernelSource = `
; bins[data[i]]++ for strided i.
start:
    la   r1, 0xF000
    lw   r2, 0(r1)        ; worker id = starting index
    lw   r3, 4(r1)        ; ctrl
    la   r1, 0xF100
    lw   r4, 0(r3)
    sw   r4, 8(r1)        ; nData
    lw   r4, 4(r3)
    sw   r4, 12(r1)       ; W
    lw   r4, 8(r3)
    sw   r4, 16(r1)       ; data
    lw   r4, 12(r3)
    sw   r4, 20(r1)       ; bins
iloop:
    lw   r3, 8(r1)
    bge  r2, r3, done
    li   r7, 4
    mul  r5, r2, r7
    lw   r6, 16(r1)
    add  r5, r5, r6
    lw   r5, 0(r5)        ; v = data[i], a bin index
    mul  r5, r5, r7
    lw   r6, 20(r1)
    add  r5, r5, r6       ; &bins[v]
    li   r6, 1
    amoadd r8, r6, (r5)
    lw   r3, 12(r1)
    add  r2, r2, r3       ; i += W
    beq  r0, r0, iloop
done:
    halt
`

// RunMatVec lays out an n x n matrix and vector in shared memory, runs
// the kernel on the workers and returns y.
func RunMatVec(m *Machine, a [][]int32, x []int32, workers []WorkerRef, maxCycles int64) ([]int32, *WorkloadResult, error) {
	n := len(a)
	if n == 0 || len(x) != n {
		return nil, nil, fmt.Errorf("sim: matvec shapes: %dx? * %d", n, len(x))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, nil, fmt.Errorf("sim: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if len(workers) == 0 {
		return nil, nil, fmt.Errorf("sim: no workers")
	}
	base := arch.GlobalBase
	aAddr := base + ctrlSize
	xAddr := aAddr + uint32(4*n*n)
	yAddr := xAddr + uint32(4*n)
	for i, row := range a {
		for j, v := range row {
			if err := m.WriteGlobal32(aAddr+uint32(4*(i*n+j)), uint32(v)); err != nil {
				return nil, nil, err
			}
		}
	}
	for j, v := range x {
		if err := m.WriteGlobal32(xAddr+uint32(4*j), uint32(v)); err != nil {
			return nil, nil, err
		}
	}
	ctrl := []uint32{uint32(n), uint32(len(workers)), aAddr, xAddr, yAddr}
	for i, v := range ctrl {
		if err := m.WriteGlobal32(base+uint32(4*i), v); err != nil {
			return nil, nil, err
		}
	}
	res, err := launch(m, MatVecKernelSource, base, workers, maxCycles)
	if err != nil {
		return nil, nil, err
	}
	y := make([]int32, n)
	for i := range y {
		v, err := m.ReadGlobal32(yAddr + uint32(4*i))
		if err != nil {
			return nil, nil, err
		}
		y[i] = int32(v)
	}
	return y, res, nil
}

// RunHistogram counts the occurrences of each bin index in data.
func RunHistogram(m *Machine, data []int32, nBins int, workers []WorkerRef, maxCycles int64) ([]int32, *WorkloadResult, error) {
	if nBins <= 0 {
		return nil, nil, fmt.Errorf("sim: need bins")
	}
	for i, v := range data {
		if v < 0 || int(v) >= nBins {
			return nil, nil, fmt.Errorf("sim: data[%d] = %d outside %d bins", i, v, nBins)
		}
	}
	if len(workers) == 0 {
		return nil, nil, fmt.Errorf("sim: no workers")
	}
	base := arch.GlobalBase
	dataAddr := base + ctrlSize
	binsAddr := dataAddr + uint32(4*len(data))
	for i, v := range data {
		if err := m.WriteGlobal32(dataAddr+uint32(4*i), uint32(v)); err != nil {
			return nil, nil, err
		}
	}
	for b := 0; b < nBins; b++ {
		if err := m.WriteGlobal32(binsAddr+uint32(4*b), 0); err != nil {
			return nil, nil, err
		}
	}
	ctrl := []uint32{uint32(len(data)), uint32(len(workers)), dataAddr, binsAddr}
	for i, v := range ctrl {
		if err := m.WriteGlobal32(base+uint32(4*i), v); err != nil {
			return nil, nil, err
		}
	}
	res, err := launch(m, HistogramKernelSource, base, workers, maxCycles)
	if err != nil {
		return nil, nil, err
	}
	bins := make([]int32, nBins)
	for b := range bins {
		v, err := m.ReadGlobal32(binsAddr + uint32(4*b))
		if err != nil {
			return nil, nil, err
		}
		bins[b] = int32(v)
	}
	return bins, res, nil
}

// launch assembles a kernel, loads it on the workers with their param
// blocks, runs to completion and collects stats.
func launch(m *Machine, source string, ctrlBase uint32, workers []WorkerRef, maxCycles int64) (*WorkloadResult, error) {
	prog, err := Assemble(source)
	if err != nil {
		return nil, fmt.Errorf("sim: kernel does not assemble: %w", err)
	}
	for wid, w := range workers {
		if err := m.LoadProgram(w.Tile, w.Core, prog); err != nil {
			return nil, err
		}
		if err := m.WritePrivate32(w.Tile, w.Core, paramBase, uint32(wid)); err != nil {
			return nil, err
		}
		if err := m.WritePrivate32(w.Tile, w.Core, paramBase+4, ctrlBase); err != nil {
			return nil, err
		}
	}
	if err := m.Run(maxCycles); err != nil {
		return nil, err
	}
	if faults := m.Faults(); len(faults) > 0 {
		return nil, fmt.Errorf("sim: cores faulted: %v", faults[0])
	}
	res := &WorkloadResult{Cycles: m.Cycle()}
	for _, w := range workers {
		res.Instructions += m.Tile(w.Tile).Cores[w.Core].Instret
	}
	res.RemoteOps = m.RemoteRequests
	res.RemoteLatency = m.AvgRemoteLatency()
	return res, nil
}

// RandomMatrix generates an n x n matrix with entries in [-9, 9].
func RandomMatrix(n int, seed int64) ([][]int32, []int32) {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]int32, n)
	for i := range a {
		a[i] = make([]int32, n)
		for j := range a[i] {
			a[i][j] = int32(rng.Intn(19) - 9)
		}
	}
	x := make([]int32, n)
	for j := range x {
		x[j] = int32(rng.Intn(19) - 9)
	}
	return a, x
}

// ReferenceMatVec is the host oracle.
func ReferenceMatVec(a [][]int32, x []int32) []int32 {
	y := make([]int32, len(a))
	for i, row := range a {
		var acc int32
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
	return y
}

// ReferenceHistogram is the host oracle.
func ReferenceHistogram(data []int32, nBins int) []int32 {
	bins := make([]int32, nBins)
	for _, v := range data {
		bins[v]++
	}
	return bins
}
