package sim

import (
	"fmt"

	"waferscale/internal/arch"
	"waferscale/internal/geom"
)

// The on-wafer graph kernel: a pull-based Bellman-Ford relaxation that
// computes single-source shortest paths (SSSP); run on a unit-weight
// graph it computes BFS levels. These are the workloads the paper
// validated on its FPGA-emulated multi-tile system (Section II).
//
// Work distribution and synchronization:
//
//   - Vertices are strided across W worker cores (worker k owns
//     vertices k, k+W, k+2W, ...), so only the owner ever writes
//     dist[v] and the inner loop needs no atomics.
//   - Each round, every worker relaxes its vertices against the
//     *incoming* edges (the host lays out the reversed CSR), then
//     arrives at a global barrier built from an amoadd counter in
//     shared memory; the counter only grows, and round r's release
//     target is (r+1)*W, which tolerates fast workers racing ahead.
//   - Change detection: any worker that lowers a distance in round r
//     stores r+1 into the ctrl block's changed word. Those stores
//     complete (acked on the complementary network) before the worker
//     arrives at the barrier, so after the barrier every worker
//     observes the same continue/stop decision.
//
// Control block layout (all offsets in bytes, in shared memory):
//
//	+0  n        +4  barrier   +8  changed   +12 workers
//	+16 maxRounds +20 rowPtr   +24 colIdx    +28 weight   +32 dist
//
// Per-core private parameter block at 0xF000: +0 worker id, +4 ctrl
// block address.
const (
	paramBase uint32 = 0xF000
	spillBase uint32 = 0xF100

	ctrlN         = 0
	ctrlBarrier   = 4
	ctrlChanged   = 8
	ctrlWorkers   = 12
	ctrlMaxRounds = 16
	ctrlRowPtr    = 20
	ctrlColIdx    = 24
	ctrlWeight    = 28
	ctrlDist      = 32
	ctrlSize      = 64 // padded
)

// RelaxKernelSource is the WS-ISA assembly of the relaxation kernel.
const RelaxKernelSource = `
; SSSP/BFS pull-based relaxation kernel.
start:
    la   r1, 0xF000
    lw   r2, 0(r1)        ; worker id
    lw   r3, 4(r1)        ; ctrl block address
    la   r1, 0xF100       ; private parameter cache
    sw   r2, 0(r1)
    sw   r3, 4(r1)
    lw   r4, 0(r3)
    sw   r4, 8(r1)        ; n
    lw   r4, 12(r3)
    sw   r4, 12(r1)       ; W
    lw   r4, 16(r3)
    sw   r4, 16(r1)       ; maxRounds
    lw   r4, 20(r3)
    sw   r4, 20(r1)       ; rowPtr
    lw   r4, 24(r3)
    sw   r4, 24(r1)       ; colIdx
    lw   r4, 28(r3)
    sw   r4, 28(r1)       ; weight
    lw   r4, 32(r3)
    sw   r4, 32(r1)       ; dist
    li   r5, 0            ; round = 0

round:
    lw   r2, 0(r1)        ; v = wid
vloop:
    lw   r3, 8(r1)
    bge  r2, r3, vdone    ; v >= n
    li   r3, 4
    mul  r4, r2, r3
    lw   r6, 32(r1)
    add  r6, r6, r4
    lw   r7, 0(r6)        ; dv = dist[v]
    sw   r7, 36(r1)       ; remember original dv
    lw   r8, 20(r1)
    add  r8, r8, r4
    lw   r9, 0(r8)        ; e = rowPtr[v]
    lw   r10, 4(r8)       ; eEnd = rowPtr[v+1]
eloop:
    bge  r9, r10, estore
    li   r3, 4
    mul  r11, r9, r3
    lw   r12, 24(r1)
    add  r12, r12, r11
    lw   r12, 0(r12)      ; u = colIdx[e] (incoming source)
    lw   r13, 28(r1)
    add  r13, r13, r11
    lw   r13, 0(r13)      ; w = weight[e]
    mul  r12, r12, r3
    lw   r14, 32(r1)
    add  r14, r14, r12
    lw   r14, 0(r14)      ; du = dist[u]
    add  r13, r14, r13    ; cand = du + w
    bge  r13, r7, enext
    add  r7, r13, r0      ; dv = cand
enext:
    addi r9, r9, 1
    beq  r0, r0, eloop
estore:
    lw   r3, 36(r1)
    beq  r7, r3, vnext    ; dv unchanged
    li   r3, 4
    mul  r4, r2, r3
    lw   r6, 32(r1)
    add  r6, r6, r4
    sw   r7, 0(r6)        ; dist[v] = dv
    lw   r3, 4(r1)
    addi r4, r5, 1
    sw   r4, 8(r3)        ; changed = round+1
vnext:
    lw   r3, 12(r1)
    add  r2, r2, r3       ; v += W
    beq  r0, r0, vloop
vdone:
    lw   r3, 4(r1)
    addi r3, r3, 4        ; &barrier
    li   r4, 1
    amoadd r6, r4, (r3)   ; arrive
    lw   r4, 12(r1)
    addi r6, r5, 1
    mul  r6, r6, r4       ; release target = (round+1)*W
bwait:
    lw   r7, 0(r3)
    blt  r7, r6, bwait
    lw   r3, 4(r1)
    lw   r7, 8(r3)        ; changed
    addi r4, r5, 1
    blt  r7, r4, done     ; nobody changed anything this round
    addi r5, r5, 1
    lw   r4, 16(r1)
    blt  r5, r4, round
done:
    halt
`

// WorkerRef names one participating core.
type WorkerRef struct {
	Tile geom.Coord
	Core int
}

// WorkloadResult reports a kernel run.
type WorkloadResult struct {
	Dist          []int32
	Cycles        int64
	Instructions  int64
	RemoteLatency float64 // mean remote round-trip, cycles
	RemoteOps     int64
}

// RunSSSP lays out the graph in shared memory, starts the relaxation
// kernel on the given workers, runs to completion and returns the
// distances from src.
func RunSSSP(m *Machine, g *Graph, src int, workers []WorkerRef, maxCycles int64) (*WorkloadResult, error) {
	distA, err := layoutSSSP(m, g, src, len(workers))
	if err != nil {
		return nil, err
	}
	res, err := launch(m, RelaxKernelSource, arch.GlobalBase, workers, maxCycles)
	if err != nil {
		return nil, err
	}
	res.Dist = make([]int32, g.N)
	for i := range res.Dist {
		v, err := m.ReadGlobal32(distA + uint32(4*i))
		if err != nil {
			return nil, err
		}
		res.Dist[i] = int32(v)
	}
	return res, nil
}

// layoutSSSP writes the reversed CSR, the initial distance array and
// the control block into shared memory and returns the distance array
// base address.
func layoutSSSP(m *Machine, g *Graph, src, nWorkers int) (uint32, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if src < 0 || src >= g.N {
		return 0, fmt.Errorf("sim: source %d out of range", src)
	}
	if nWorkers == 0 {
		return 0, fmt.Errorf("sim: no workers")
	}
	rev := g.ReverseCSR()

	// Memory layout, starting at the base of the global space.
	base := arch.GlobalBase
	rowPtrA := base + ctrlSize
	colIdxA := rowPtrA + uint32(4*(g.N+1))
	weightA := colIdxA + uint32(4*rev.M())
	distA := weightA + uint32(4*rev.M())

	w32 := func(addr uint32, v int32) error { return m.WriteGlobal32(addr, uint32(v)) }
	writeArr := func(addr uint32, vals []int32) error {
		for i, v := range vals {
			if err := w32(addr+uint32(4*i), v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeArr(rowPtrA, rev.RowPtr); err != nil {
		return 0, err
	}
	if err := writeArr(colIdxA, rev.ColIdx); err != nil {
		return 0, err
	}
	if err := writeArr(weightA, rev.Weight); err != nil {
		return 0, err
	}
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	if err := writeArr(distA, dist); err != nil {
		return 0, err
	}
	ctrl := []int32{int32(g.N), 0, 0, int32(nWorkers), int32(g.N + 1),
		int32(rowPtrA), int32(colIdxA), int32(weightA), int32(distA)}
	if err := writeArr(base, ctrl); err != nil {
		return 0, err
	}
	return distA, nil
}

// RunBFS runs the kernel on the unit-weight graph: the distances are
// BFS levels.
func RunBFS(m *Machine, g *Graph, src int, workers []WorkerRef, maxCycles int64) (*WorkloadResult, error) {
	return RunSSSP(m, g.Unweighted(), src, workers, maxCycles)
}

// SpreadWorkers returns n workers spread round-robin across healthy
// tiles (core 0 of every tile first, then core 1, ...), maximizing
// placement diversity — the opposite of AllWorkers' packed order.
func SpreadWorkers(m *Machine, n int) []WorkerRef {
	var tiles []*Tile
	m.grid.All(func(c geom.Coord) {
		if t := m.Tile(c); t != nil {
			tiles = append(tiles, t)
		}
	})
	var out []WorkerRef
	for core := 0; len(out) < n; core++ {
		if core >= m.Cfg.CoresPerTile {
			break
		}
		for _, t := range tiles {
			if len(out) >= n {
				break
			}
			if core < len(t.Cores) {
				out = append(out, WorkerRef{Tile: t.Coord, Core: core})
			}
		}
	}
	return out
}

// AllWorkers returns one WorkerRef per core of every healthy tile, up
// to max (0 = no limit), in row-major tile order.
func AllWorkers(m *Machine, max int) []WorkerRef {
	var out []WorkerRef
	m.grid.All(func(c geom.Coord) {
		t := m.Tile(c)
		if t == nil {
			return
		}
		for i := range t.Cores {
			if max > 0 && len(out) >= max {
				return
			}
			out = append(out, WorkerRef{Tile: c, Core: i})
		}
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
