package sim

import (
	"strings"
	"testing"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/inject"
)

// globalWindowAddr returns the base global address of a tile's shared
// window.
func globalWindowAddr(cfg arch.Config, c geom.Coord) uint32 {
	amap := arch.NewAddressMap(cfg)
	return arch.GlobalBase + uint32(cfg.Grid().Index(c))*amap.GlobalWindowBytes()
}

// loadFromSource assembles a tiny program that loads one global word
// into r2 and halts, and starts it on core 0 of the given tile.
func startRemoteLoad(t *testing.T, m *Machine, at geom.Coord, addr uint32) *Core {
	t.Helper()
	prog := mustAssemble(t, `
	    la   r1, `+hex(addr)+`
	    lw   r2, 0(r1)
	    halt
	`)
	if err := m.LoadProgram(at, 0, prog); err != nil {
		t.Fatal(err)
	}
	return m.Tile(at).Cores[0]
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	return "0x" + string(out)
}

// TestRemoteRetryOverFlappedLink blocks the only row path between a
// core and its target with a link-flap window: the first attempt times
// out, the retry (exponential backoff) lands after the link returns,
// and the load still completes with the right value.
func TestRemoteRetryOverFlappedLink(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	m.RemoteTimeout = 60
	m.RemoteRetries = 5

	dst := geom.C(3, 0)
	addr := globalWindowAddr(cfg, dst)
	if err := m.WriteGlobal32(addr, 0x1234); err != nil {
		t.Fatal(err)
	}
	// Both DoR networks use the same row-0 east links for (0,0)->(3,0);
	// flapping (1,0).E severs them until cycle 600.
	sched := inject.NewSchedule().FlapLink(geom.C(1, 0), geom.East, 0, 600)
	if err := m.AttachSchedule(sched); err != nil {
		t.Fatal(err)
	}
	c := startRemoteLoad(t, m, geom.C(0, 0), addr)
	if err := m.Run(20_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if faults := m.Faults(); len(faults) > 0 {
		t.Fatalf("faults: %v", faults)
	}
	if c.Regs[2] != 0x1234 {
		t.Errorf("loaded %#x, want 0x1234", c.Regs[2])
	}
	rep := m.Degradation()
	if rep.TimedOutOps == 0 || rep.RetriedOps == 0 {
		t.Errorf("expected timeouts and retries, got %+v", rep)
	}
	if rep.LinkFlaps != 1 {
		t.Errorf("LinkFlaps = %d, want 1", rep.LinkFlaps)
	}
	if !rep.Degraded() {
		t.Error("report should read as degraded")
	}
	if m.Net().Stats().Timeouts == 0 {
		t.Error("network stats should count the timeout")
	}
}

// TestRemoteRetriesExhaustedDegrade severs the path permanently: the
// core must fault with a structured error — never hang — and the
// destination must be marked degraded.
func TestRemoteRetriesExhaustedDegrade(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	m.RemoteTimeout = 30
	m.RemoteRetries = 2

	dst := geom.C(3, 0)
	addr := globalWindowAddr(cfg, dst)
	sched := inject.NewSchedule().FlapLink(geom.C(1, 0), geom.East, 0, 1<<40)
	if err := m.AttachSchedule(sched); err != nil {
		t.Fatal(err)
	}
	startRemoteLoad(t, m, geom.C(0, 0), addr)
	if err := m.Run(20_000); err != nil {
		t.Fatalf("machine did not quiesce: %v", err)
	}
	faults := m.Faults()
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "gave up") {
		t.Fatalf("faults = %v, want one 'gave up' error", faults)
	}
	rep := m.Degradation()
	if rep.ExhaustedOps != 1 {
		t.Errorf("ExhaustedOps = %d, want 1", rep.ExhaustedOps)
	}
	if len(rep.DegradedTiles) != 1 || rep.DegradedTiles[0] != dst {
		t.Errorf("DegradedTiles = %v, want [%v]", rep.DegradedTiles, dst)
	}
	if rep.RetriedOps != 2 {
		t.Errorf("RetriedOps = %d, want 2", rep.RetriedOps)
	}
}

// TestRelayDetourRemoteAccess constructs a fault pattern where both
// DoR paths between two tiles are blocked and only a relay-tile detour
// (paper Section VI) connects them; the machine must complete the op by
// forwarding the request and the response through the relay.
func TestRelayDetourRemoteAccess(t *testing.T) {
	cfg := smallConfig()
	cfg.TilesX, cfg.TilesY = 3, 3
	cfg.JTAGChains = 3
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(1, 0)) // blocks XY (0,0)->(2,2) and YX (2,2)->(0,0)
	fm.MarkFaulty(geom.C(0, 2)) // blocks YX (0,0)->(2,2) and XY (2,2)->(0,0)
	m := newMachine(t, cfg, fm)

	dst := geom.C(2, 2)
	addr := globalWindowAddr(cfg, dst)
	if err := m.WriteGlobal32(addr, 77); err != nil {
		t.Fatal(err)
	}
	c := startRemoteLoad(t, m, geom.C(0, 0), addr)
	if err := m.Run(20_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if faults := m.Faults(); len(faults) > 0 {
		t.Fatalf("faults: %v", faults)
	}
	if c.Regs[2] != 77 {
		t.Errorf("loaded %d, want 77", c.Regs[2])
	}
	rep := m.Degradation()
	if rep.RelayedRequests == 0 {
		t.Errorf("expected relayed requests, got %+v", rep)
	}
	if rep.RelayedResponses == 0 {
		t.Errorf("expected relayed responses, got %+v", rep)
	}
	if m.Net().Stats().Forwarded == 0 {
		t.Error("network stats should count forwards")
	}
}

// TestKillTileRemapShadow kills a tile and checks the Section VIII
// degraded mode: its global window remaps to zeroed shadow storage that
// both the host backdoor and remote ops can reach.
func TestKillTileRemapShadow(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	victim := geom.C(3, 3)
	addr := globalWindowAddr(cfg, victim)
	if err := m.WriteGlobal32(addr, 555); err != nil {
		t.Fatal(err)
	}
	if !m.KillTile(victim) {
		t.Fatal("KillTile returned false")
	}
	if m.KillTile(victim) {
		t.Error("second KillTile should be a no-op")
	}
	if m.Tile(victim) != nil {
		t.Error("dead tile should read as nil")
	}
	// The window survives as zeroed shadow storage: the old data is
	// honestly lost, but the address stays valid.
	if v, err := m.ReadGlobal32(addr); err != nil || v != 0 {
		t.Fatalf("shadow read = %d, %v; want 0, nil", v, err)
	}
	if err := m.WriteGlobal32(addr, 42); err != nil {
		t.Fatal(err)
	}
	// A core on a surviving tile reaches the shadow through the network.
	c := startRemoteLoad(t, m, geom.C(0, 0), addr)
	if err := m.Run(20_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if c.Regs[2] != 42 {
		t.Errorf("remote shadow load = %d, want 42", c.Regs[2])
	}
	rep := m.Degradation()
	if rep.RemappedWindows != 1 {
		t.Errorf("RemappedWindows = %d, want 1", rep.RemappedWindows)
	}
	if want := int64(arch.NewAddressMap(cfg).GlobalWindowBytes()); rep.LostSharedBytes != want {
		t.Errorf("LostSharedBytes = %d, want %d", rep.LostSharedBytes, want)
	}
	if len(rep.KilledTiles) != 1 || rep.KilledTiles[0] != victim {
		t.Errorf("KilledTiles = %v", rep.KilledTiles)
	}
}

// chaosBFSMachine builds an 8x8 2-core machine for the acceptance
// scenario.
func chaosBFSMachine(t *testing.T) *Machine {
	cfg := arch.DefaultConfig()
	cfg.TilesX, cfg.TilesY = 8, 8
	cfg.CoresPerTile = 2
	cfg.JTAGChains = 8
	return newMachine(t, cfg, nil)
}

// TestChaosBFSKillBenignTile is the acceptance scenario's happy half:
// an 8x8 BFS run with a tile killed mid-run that hosts no workers and
// no graph data completes and still verifies against the oracle.
func TestChaosBFSKillBenignTile(t *testing.T) {
	m := chaosBFSMachine(t)
	sched := inject.NewSchedule().KillTileAt(3000, geom.C(6, 6))
	if err := m.AttachSchedule(sched); err != nil {
		t.Fatal(err)
	}
	g := GridGraph(8, 8).Unweighted()
	ws := SpreadWorkers(m, 16)
	res, err := RunSSSPUnderFaults(m, g, 0, ws, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %v", res.RunErr)
	}
	want := g.ReferenceSSSP(0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
	if len(res.Report.KilledTiles) != 1 {
		t.Errorf("KilledTiles = %v", res.Report.KilledTiles)
	}
}

// TestChaosBFSKillWorkerTileTerminates is the acceptance scenario's
// hard half: killing a worker tile makes the barrier unreachable, and
// the run must still terminate within its budget with a structured
// report — never hang, never panic — with a deterministic outcome.
func TestChaosBFSKillWorkerTileTerminates(t *testing.T) {
	run := func() *ChaosResult {
		m := chaosBFSMachine(t)
		sched := inject.NewSchedule().KillTileAt(2000, geom.C(1, 0))
		if err := m.AttachSchedule(sched); err != nil {
			t.Fatal(err)
		}
		g := GridGraph(8, 8).Unweighted()
		ws := SpreadWorkers(m, 16) // (1,0) core 0 is worker 1
		res, err := RunSSSPUnderFaults(m, g, 0, ws, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Completed {
		t.Fatal("run should exhaust its budget: the barrier lost a worker")
	}
	if res.RunErr == nil {
		t.Fatal("expected a budget-exhaustion error")
	}
	if res.Cycles != 60_000 {
		t.Errorf("Cycles = %d, want the full budget", res.Cycles)
	}
	if len(res.Report.KilledTiles) != 1 {
		t.Errorf("KilledTiles = %v", res.Report.KilledTiles)
	}
	// Determinism: the same schedule replays to the same outcome.
	res2 := run()
	if res2.Completed != res.Completed || res2.Cycles != res.Cycles {
		t.Fatalf("outcome not deterministic: %+v vs %+v", res2, res)
	}
	for v := range res.Dist {
		if res.Dist[v] != res2.Dist[v] {
			t.Fatalf("dist[%d] differs across replays: %d vs %d", v, res.Dist[v], res2.Dist[v])
		}
	}
	if res.Report.RetriedOps != res2.Report.RetriedOps ||
		res.Report.TimedOutOps != res2.Report.TimedOutOps ||
		res.Report.DroppedResponses != res2.Report.DroppedResponses {
		t.Fatalf("report not deterministic: %+v vs %+v", res.Report, res2.Report)
	}
}

// TestBitErrorSchedule injects payload corruption and checks the
// machine still terminates (the op retries or completes with the
// corrupted value — either way, no hang).
func TestBitErrorSchedule(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	m.RemoteTimeout = 100
	dst := geom.C(3, 0)
	addr := globalWindowAddr(cfg, dst)
	if err := m.WriteGlobal32(addr, 9); err != nil {
		t.Fatal(err)
	}
	sched := inject.NewSchedule()
	for cy := int64(1); cy < 40; cy++ {
		sched.BitErrorAt(cy, geom.C(1, 0), 1<<40)
	}
	if err := m.AttachSchedule(sched); err != nil {
		t.Fatal(err)
	}
	startRemoteLoad(t, m, geom.C(0, 0), addr)
	if err := m.Run(20_000); err != nil {
		t.Fatalf("run: %v", err)
	}
}
