package sim

import (
	"testing"

	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/noc"
	"waferscale/internal/noc/analytical"
)

func attachAnalytical(t *testing.T, m *Machine, fm *fault.Map) {
	t.Helper()
	model, err := analytical.New(fm, analytical.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.LatencyModel = model
}

// A modeled machine must compute exactly what the cycle-exact machine
// computes — the approximation changes timing, never results.
func TestModeledMatVecMatchesExact(t *testing.T) {
	cfg := smallConfig()
	a, x := RandomMatrix(12, 5)
	want := ReferenceMatVec(a, x)

	exact := newMachine(t, cfg, nil)
	_, exactRes, err := RunMatVec(exact, a, x, SpreadWorkers(exact, 8), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}

	approx := newMachine(t, cfg, nil)
	attachAnalytical(t, approx, fault.NewMap(cfg.Grid()))
	y, approxRes, err := RunMatVec(approx, a, x, SpreadWorkers(approx, 8), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %d, want %d", i, y[i], want[i])
		}
	}
	if approx.TimingModelName() != noc.ModelNameAnalytical {
		t.Fatalf("timing model %q, want %q", approx.TimingModelName(), noc.ModelNameAnalytical)
	}
	if exact.TimingModelName() != noc.ModelNameCycle {
		t.Fatalf("timing model %q, want %q", exact.TimingModelName(), noc.ModelNameCycle)
	}
	// The modeled run must still price remote traffic: nonzero round
	// trips, in the same order of magnitude as the measured engine.
	if approx.RemoteRequests == 0 {
		t.Fatal("modeled run recorded no remote requests")
	}
	me, ma := exact.AvgRemoteLatency(), approx.AvgRemoteLatency()
	if ma <= 0 {
		t.Fatalf("modeled avg remote latency %.1f, want > 0", ma)
	}
	if ma < me/4 || ma > me*4 {
		t.Errorf("modeled avg remote latency %.1f vs exact %.1f: more than 4x apart", ma, me)
	}
	if exactRes.Cycles == 0 || approxRes.Cycles == 0 {
		t.Fatal("zero-cycle run")
	}
}

// Atomics-heavy contention: histogram counts must be exact under the
// model too (effects apply at issue, still serialized per cycle).
func TestModeledHistogramMatchesExact(t *testing.T) {
	cfg := smallConfig()
	data := make([]int32, 256)
	for i := range data {
		data[i] = int32((i * 7) % 16)
	}
	want := ReferenceHistogram(data, 16)
	m := newMachine(t, cfg, nil)
	attachAnalytical(t, m, fault.NewMap(cfg.Grid()))
	bins, _, err := RunHistogram(m, data, 16, SpreadWorkers(m, 12), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins[%d] = %d, want %d", i, bins[i], want[i])
		}
	}
}

// A modeled run on a faulted map must fault cores whose targets are
// unreachable and complete ops that route around the damage, mirroring
// the cycle engine's reachability verdicts.
func TestModeledRunWithFaults(t *testing.T) {
	cfg := smallConfig()
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(1, 1))
	fm.MarkFaulty(geom.C(2, 2))
	m, err := NewMachine(cfg, fm)
	if err != nil {
		t.Fatal(err)
	}
	attachAnalytical(t, m, fm)
	a, x := RandomMatrix(8, 11)
	want := ReferenceMatVec(a, x)
	y, _, err := RunMatVec(m, a, x, SpreadWorkers(m, 6), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %d, want %d (faulted map)", i, y[i], want[i])
		}
	}
}

// Snapshot/fork must carry the attached model: a fork of a modeled
// machine keeps producing modeled timing and exact results.
func TestModeledSnapshotFork(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	attachAnalytical(t, m, fault.NewMap(cfg.Grid()))
	m.LatencyRate = 0.01
	fork := m.Snapshot().Fork()
	if fork.TimingModelName() != noc.ModelNameAnalytical {
		t.Fatalf("fork timing model %q, want %q", fork.TimingModelName(), noc.ModelNameAnalytical)
	}
	if fork.LatencyRate != 0.01 {
		t.Fatalf("fork latency rate %v, want 0.01", fork.LatencyRate)
	}
	a, x := RandomMatrix(8, 3)
	want := ReferenceMatVec(a, x)
	y, _, err := RunMatVec(fork, a, x, SpreadWorkers(fork, 4), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("fork y[%d] = %d, want %d", i, y[i], want[i])
		}
	}
}

// The modeled engine must stay bit-identical across shard counts, like
// the cycle engine: staged remote ops commit in serial order.
func TestModeledShardInvariance(t *testing.T) {
	run := func(shards int) ([]int32, int64) {
		cfg := smallConfig()
		m := newMachine(t, cfg, nil)
		attachAnalytical(t, m, fault.NewMap(cfg.Grid()))
		m.Shards = shards
		defer m.Close()
		a, x := RandomMatrix(10, 17)
		y, res, err := RunMatVec(m, a, x, SpreadWorkers(m, 8), 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return y, res.Cycles
	}
	y1, c1 := run(1)
	y4, c4 := run(4)
	if c1 != c4 {
		t.Fatalf("modeled run cycles differ across shards: %d vs %d", c1, c4)
	}
	for i := range y1 {
		if y1[i] != y4[i] {
			t.Fatalf("modeled results differ across shards at %d", i)
		}
	}
}
