package sim

import (
	"fmt"
	"math/rand"
)

// Graph is a weighted directed graph in CSR form — the representation
// the workloads lay out in the waferscale shared memory.
type Graph struct {
	N      int     // vertices
	RowPtr []int32 // len N+1
	ColIdx []int32 // len M
	Weight []int32 // len M
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.ColIdx) }

// Infinity is the unreached distance marker. It is small enough that
// Infinity + maxWeight cannot overflow int32.
const Infinity int32 = 0x3FFFFFFF

// RandomGraph generates a connected-ish random digraph: a random cycle
// backbone (guaranteeing strong connectivity) plus extra random edges,
// with weights in [1, maxW]. Deterministic for a given seed.
func RandomGraph(n, extraEdges, maxW int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, v, w int32 }
	edges := make([]edge, 0, n+extraEdges)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u, v := perm[i], perm[(i+1)%n]
		edges = append(edges, edge{int32(u), int32(v), int32(rng.Intn(maxW)) + 1})
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, edge{int32(u), int32(v), int32(rng.Intn(maxW)) + 1})
	}
	return fromEdges(n, func(emit func(u, v, w int32)) {
		for _, e := range edges {
			emit(e.u, e.v, e.w)
		}
	})
}

// GridGraph generates a w x h 4-neighbor mesh with unit weights — a
// stencil-like workload topology.
func GridGraph(w, h int) *Graph {
	n := w * h
	return fromEdges(n, func(emit func(u, v, wt int32)) {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				u := int32(y*w + x)
				if x+1 < w {
					emit(u, u+1, 1)
					emit(u+1, u, 1)
				}
				if y+1 < h {
					emit(u, u+int32(w), 1)
					emit(u+int32(w), u, 1)
				}
			}
		}
	})
}

// fromEdges builds CSR from an edge emitter.
func fromEdges(n int, gen func(emit func(u, v, w int32))) *Graph {
	deg := make([]int32, n)
	type e struct{ u, v, w int32 }
	var all []e
	gen(func(u, v, w int32) {
		all = append(all, e{u, v, w})
		deg[u]++
	})
	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		g.RowPtr[i+1] = g.RowPtr[i] + deg[i]
	}
	g.ColIdx = make([]int32, len(all))
	g.Weight = make([]int32, len(all))
	fill := append([]int32(nil), g.RowPtr[:n]...)
	for _, ed := range all {
		p := fill[ed.u]
		g.ColIdx[p] = ed.v
		g.Weight[p] = ed.w
		fill[ed.u]++
	}
	return g
}

// ReferenceSSSP computes shortest distances from src with Bellman-Ford
// on the host — the oracle the on-wafer kernel is checked against.
// Unweighted graphs make this reference BFS levels.
func (g *Graph) ReferenceSSSP(src int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	for round := 0; round < g.N; round++ {
		changed := false
		for u := 0; u < g.N; u++ {
			if dist[u] == Infinity {
				continue
			}
			for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
				v := g.ColIdx[e]
				if nd := dist[u] + g.Weight[e]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// CountMismatches returns the number of indices where got differs from
// want; a length difference counts every extra index as a mismatch.
// It is the shared verification primitive the chaos sweeps and the
// wsim CLI use to score a kernel run against the host oracle.
func CountMismatches(got, want []int32) int {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	mismatches := len(got) + len(want) - 2*n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			mismatches++
		}
	}
	return mismatches
}

// Unweighted returns a copy with all weights 1 (BFS levels = SSSP
// distances on it).
func (g *Graph) Unweighted() *Graph {
	w := make([]int32, len(g.Weight))
	for i := range w {
		w[i] = 1
	}
	return &Graph{N: g.N, RowPtr: g.RowPtr, ColIdx: g.ColIdx, Weight: w}
}

// ReverseCSR returns the graph with every edge reversed — the kernel is
// pull-based (vertex v scans its *incoming* edges), so the host lays
// out the reversed CSR.
func (g *Graph) ReverseCSR() *Graph {
	return fromEdges(g.N, func(emit func(u, v, w int32)) {
		for u := 0; u < g.N; u++ {
			for e := g.RowPtr[u]; e < g.RowPtr[u+1]; e++ {
				emit(g.ColIdx[e], int32(u), g.Weight[e])
			}
		}
	})
}

// Validate sanity-checks the CSR arrays.
func (g *Graph) Validate() error {
	if g.N < 1 || len(g.RowPtr) != g.N+1 || len(g.ColIdx) != len(g.Weight) {
		return fmt.Errorf("sim: malformed CSR (n=%d, rowptr=%d, colidx=%d, weight=%d)",
			g.N, len(g.RowPtr), len(g.ColIdx), len(g.Weight))
	}
	if g.RowPtr[0] != 0 || int(g.RowPtr[g.N]) != len(g.ColIdx) {
		return fmt.Errorf("sim: rowptr endpoints wrong")
	}
	for i := 0; i < g.N; i++ {
		if g.RowPtr[i] > g.RowPtr[i+1] {
			return fmt.Errorf("sim: rowptr not monotone at %d", i)
		}
	}
	for _, v := range g.ColIdx {
		if v < 0 || int(v) >= g.N {
			return fmt.Errorf("sim: edge target %d out of range", v)
		}
	}
	return nil
}
