package sim

import (
	"fmt"
	"io"
	"sort"
)

// Profile is the machine-wide execution profile: where the cores'
// cycles went. It quantifies the NUMA behaviour of the unified shared
// memory — the architectural trade the paper's tile hierarchy makes.
type Profile struct {
	ActiveCores   int
	Cycles        int64
	Instructions  int64
	StallFixed    int64 // intra-tile memory latency
	StallRemote   int64 // waferscale network round trips
	RetryCycles   int64 // crossbar bank conflicts
	RemoteOps     int64
	RemoteLatency float64
	BankConflicts int64
}

// CPI returns machine cycles per instruction across active cores.
func (p Profile) CPI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.Cycles) * float64(p.ActiveCores) / float64(p.Instructions)
}

// RemoteStallFrac returns the fraction of core cycles spent waiting on
// the network.
func (p Profile) RemoteStallFrac() float64 {
	total := float64(p.Cycles) * float64(p.ActiveCores)
	if total == 0 {
		return 0
	}
	return float64(p.StallRemote) / total
}

// CollectProfile aggregates counters over cores that executed at least
// one instruction.
func (m *Machine) CollectProfile() Profile {
	p := Profile{
		Cycles:        m.cycle,
		RemoteOps:     m.RemoteRequests,
		RemoteLatency: m.AvgRemoteLatency(),
		BankConflicts: m.BankConflicts,
	}
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for _, c := range t.Cores {
			if c.Instret == 0 {
				continue
			}
			p.ActiveCores++
			p.Instructions += c.Instret
			p.StallFixed += c.StallFixed
			p.StallRemote += c.StallRemote
			p.RetryCycles += c.RetryCycles
		}
	}
	return p
}

// WriteProfile renders the profile with a per-core hot list.
func (m *Machine) WriteProfile(w io.Writer, topN int) {
	p := m.CollectProfile()
	fmt.Fprintf(w, "machine profile: %d cycles, %d active cores\n", p.Cycles, p.ActiveCores)
	fmt.Fprintf(w, "  instructions     %d (CPI %.2f)\n", p.Instructions, p.CPI())
	fmt.Fprintf(w, "  remote stalls    %d cycles (%.1f%% of core time), %d ops at %.1f cyc avg\n",
		p.StallRemote, p.RemoteStallFrac()*100, p.RemoteOps, p.RemoteLatency)
	fmt.Fprintf(w, "  local stalls     %d cycles; bank-conflict retries %d\n", p.StallFixed, p.RetryCycles)

	type coreRow struct {
		name  string
		insts int64
		rstal int64
	}
	var rows []coreRow
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for _, c := range t.Cores {
			if c.Instret > 0 {
				rows = append(rows, coreRow{
					name:  fmt.Sprintf("tile%v.core%d", t.Coord, c.idx),
					insts: c.Instret,
					rstal: c.StallRemote,
				})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].insts > rows[j].insts })
	if topN > len(rows) {
		topN = len(rows)
	}
	for _, r := range rows[:topN] {
		fmt.Fprintf(w, "    %-22s %8d instret %8d remote-stall\n", r.name, r.insts, r.rstal)
	}
}
