package sim

import (
	"testing"

	"waferscale/internal/arch"
	"waferscale/internal/geom"
	"waferscale/internal/inject"
)

// The tests in this file pin the sharded core loop (Machine.Shards > 1)
// to the serial engine: same machines, same workloads, one stepped by
// each, and everything observable — results, cycle counts, machine
// counters, per-core statistics, NoC stats, degradation reports — must
// be bit-identical. Shard counts include 7, which divides none of the
// test grids' heights, so the bands are uneven.

// diffMachinesDeep extends diffMachines with a per-core comparison:
// every core's architectural and statistical state must match.
func diffMachinesDeep(t *testing.T, sharded, ref *Machine) {
	t.Helper()
	diffMachines(t, sharded, ref)
	if sharded.RemoteLatency != ref.RemoteLatency {
		t.Errorf("RemoteLatency: sharded %d, ref %d", sharded.RemoteLatency, ref.RemoteLatency)
	}
	if sharded.running != ref.running {
		t.Errorf("running counter: sharded %d, ref %d", sharded.running, ref.running)
	}
	for i := range ref.tiles {
		rt, st := ref.tiles[i], sharded.tiles[i]
		if (rt == nil) != (st == nil) {
			t.Fatalf("tile %d: presence diverges", i)
		}
		if rt == nil {
			continue
		}
		if rt.dead != st.dead {
			t.Errorf("tile %d: dead %v vs %v", i, st.dead, rt.dead)
		}
		for ci := range rt.Cores {
			rc, sc := rt.Cores[ci], st.Cores[ci]
			if rc.state != sc.state || rc.PC != sc.PC || rc.Regs != sc.Regs {
				t.Fatalf("tile %d core %d: arch state diverges (state %d/%d pc %#x/%#x)",
					i, ci, sc.state, rc.state, sc.PC, rc.PC)
			}
			if rc.Instret != sc.Instret || rc.StallFixed != sc.StallFixed ||
				rc.StallRemote != sc.StallRemote || rc.RetryCycles != sc.RetryCycles {
				t.Fatalf("tile %d core %d: stats diverge (instret %d/%d stallR %d/%d)",
					i, ci, sc.Instret, rc.Instret, sc.StallRemote, rc.StallRemote)
			}
		}
	}
}

// TestMachineShardedDifferentialBFS: a healthy BFS run across shard
// counts, including a non-divisor one, must match the serial engine on
// every observable.
func TestMachineShardedDifferentialBFS(t *testing.T) {
	g := GridGraph(6, 6).Unweighted()
	want := g.ReferenceSSSP(0)

	run := func(shards, workers int) (*WorkloadResult, *Machine) {
		cfg := arch.DefaultConfig()
		cfg.TilesX, cfg.TilesY = 6, 6
		cfg.CoresPerTile = 2
		cfg.JTAGChains = 6
		m := newMachine(t, cfg, nil)
		m.Shards = shards
		m.Workers = workers
		res, err := RunBFS(m, g, 0, SpreadWorkers(m, 12), 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		m.Close()
		return res, m
	}
	refRes, ref := run(1, 0)
	for v := range want {
		if refRes.Dist[v] != want[v] {
			t.Fatalf("serial engine wrong answer: dist[%d] = %d, want %d", v, refRes.Dist[v], want[v])
		}
	}
	for _, shards := range []int{2, 4, 7} {
		shRes, sh := run(shards, 0)
		for v := range want {
			if shRes.Dist[v] != refRes.Dist[v] {
				t.Fatalf("shards=%d: dist[%d] = %d, serial %d", shards, v, shRes.Dist[v], refRes.Dist[v])
			}
		}
		if shRes.Cycles != refRes.Cycles {
			t.Errorf("shards=%d: Cycles %d, serial %d", shards, shRes.Cycles, refRes.Cycles)
		}
		if shRes.Instructions != refRes.Instructions {
			t.Errorf("shards=%d: Instructions %d, serial %d", shards, shRes.Instructions, refRes.Instructions)
		}
		if shRes.RemoteOps != refRes.RemoteOps {
			t.Errorf("shards=%d: RemoteOps %d, serial %d", shards, shRes.RemoteOps, refRes.RemoteOps)
		}
		diffMachinesDeep(t, sh, ref)
	}
}

// TestMachineShardedDifferentialChaos replays an identical fault
// schedule — a worker tile killed mid-run, a link flap, a bit error —
// through the serial and sharded engines at several widths. This
// exercises the staged paths hard: remote-op issue under backpressure,
// deadline retries with kernel re-planning, degradation accounting, and
// cores faulting outside their own band's step (KillTile runs between
// cycles).
func TestMachineShardedDifferentialChaos(t *testing.T) {
	g := GridGraph(8, 8).Unweighted()
	run := func(shards, workers int) (*ChaosResult, *Machine) {
		m := chaosBFSMachine(t)
		m.Shards = shards
		m.Workers = workers
		sched := inject.NewSchedule().
			KillTileAt(2000, geom.C(1, 0)).
			FlapLink(geom.C(3, 3), geom.East, 1000, 1500).
			BitErrorAt(1200, geom.C(2, 2), 0xFF)
		if err := m.AttachSchedule(sched); err != nil {
			t.Fatal(err)
		}
		res, err := RunSSSPUnderFaults(m, g, 0, SpreadWorkers(m, 16), 60_000)
		if err != nil {
			t.Fatal(err)
		}
		m.Close()
		return res, m
	}
	refRes, ref := run(1, 0)
	for _, sw := range [][2]int{{2, 0}, {7, 0}, {4, 1}, {4, 3}} {
		shards, workers := sw[0], sw[1]
		shRes, sh := run(shards, workers)
		if shRes.Completed != refRes.Completed {
			t.Fatalf("shards=%d workers=%d: Completed %v, serial %v", shards, workers, shRes.Completed, refRes.Completed)
		}
		if shRes.Cycles != refRes.Cycles {
			t.Errorf("shards=%d workers=%d: Cycles %d, serial %d", shards, workers, shRes.Cycles, refRes.Cycles)
		}
		if shRes.ReadErrors != refRes.ReadErrors {
			t.Errorf("shards=%d workers=%d: ReadErrors %d, serial %d", shards, workers, shRes.ReadErrors, refRes.ReadErrors)
		}
		for v := range shRes.Dist {
			if shRes.Dist[v] != refRes.Dist[v] {
				t.Fatalf("shards=%d workers=%d: dist[%d] = %d, serial %d", shards, workers, v, shRes.Dist[v], refRes.Dist[v])
			}
		}
		fr, rr := shRes.Report, refRes.Report
		if len(fr.KilledTiles) != len(rr.KilledTiles) ||
			len(fr.DegradedTiles) != len(rr.DegradedTiles) ||
			fr.RemappedWindows != rr.RemappedWindows ||
			fr.LostSharedBytes != rr.LostSharedBytes ||
			fr.RelayedRequests != rr.RelayedRequests ||
			fr.RelayedResponses != rr.RelayedResponses ||
			fr.RetriedOps != rr.RetriedOps ||
			fr.TimedOutOps != rr.TimedOutOps ||
			fr.ExhaustedOps != rr.ExhaustedOps ||
			fr.DroppedResponses != rr.DroppedResponses ||
			fr.DroppedForwards != rr.DroppedForwards ||
			fr.LinkFlaps != rr.LinkFlaps ||
			fr.BitErrors != rr.BitErrors {
			t.Errorf("shards=%d workers=%d: degradation reports diverge:\nsharded %+v\nserial  %+v", shards, workers, fr, rr)
		}
		diffMachinesDeep(t, sh, ref)
	}
}

// TestMachineShardedComposesWithNetSharding runs the machine's core
// loop AND its NoC both sharded — the full parallel stack — against the
// all-serial engine.
func TestMachineShardedComposesWithNetSharding(t *testing.T) {
	g := GridGraph(5, 5).Unweighted()
	run := func(shards int) (*WorkloadResult, *Machine) {
		cfg := arch.DefaultConfig()
		cfg.TilesX, cfg.TilesY = 5, 5
		cfg.CoresPerTile = 2
		cfg.JTAGChains = 5
		m := newMachine(t, cfg, nil)
		m.Shards = shards
		m.Net().Shards = shards
		res, err := RunBFS(m, g, 0, SpreadWorkers(m, 10), 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		m.Close()
		return res, m
	}
	refRes, ref := run(1)
	for _, shards := range []int{3, 7} {
		shRes, sh := run(shards)
		for v := range shRes.Dist {
			if shRes.Dist[v] != refRes.Dist[v] {
				t.Fatalf("shards=%d: dist[%d] diverges", shards, v)
			}
		}
		if shRes.Cycles != refRes.Cycles {
			t.Errorf("shards=%d: Cycles %d, serial %d", shards, shRes.Cycles, refRes.Cycles)
		}
		diffMachinesDeep(t, sh, ref)
	}
}

// TestMachineShardedTraceForcesSerial: attaching a trace writer must
// route stepping through the serial loop (trace output interleaving is
// order-sensitive), even with Shards set.
func TestMachineShardedTraceForcesSerial(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)
	defer m.Close()
	m.Shards = 4
	var buf traceBuffer
	m.SetTrace(&buf, nil)
	if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, "li r1, 3\nhalt")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.msh != nil {
		t.Error("sharded engine was built despite active tracing")
	}
	if buf.n == 0 {
		t.Error("no trace output")
	}
}

// traceBuffer counts trace writes without retaining them.
type traceBuffer struct{ n int }

func (b *traceBuffer) Write(p []byte) (int, error) { b.n += len(p); return len(p), nil }
