package sim

import (
	"fmt"
	"strings"

	"waferscale/internal/geom"
	"waferscale/internal/inject"
)

// DegradationReport is the machine's structured account of running
// under faults: what died, what memory was lost, and how much work the
// retry/detour machinery did to keep the workload alive. A healthy run
// reports all zeros. This is the runtime counterpart of the paper's
// Section VIII single-layer fallback story — the system degrades with
// an explanation instead of hanging or panicking.
type DegradationReport struct {
	// Topology names the NoC link graph the machine ran, so degraded
	// runs are attributable to the interconnect they happened on. Note
	// the relay planner reasons in mesh row/column terms on every
	// topology: on cmesh and express (whose link graphs contain the
	// mesh) the planned detours are correct but not necessarily
	// minimal; on vertical, whose fold replaces the mesh links between
	// the two layers, a mesh-planned detour can be unroutable, in which
	// case the op exhausts its retries and faults its core with a
	// structured error rather than hanging. See
	// TestRelayDetourNonMeshTopologies for both behaviors.
	Topology string
	// KilledTiles lists tiles killed at runtime, in kill order.
	KilledTiles []geom.Coord
	// DegradedTiles lists tiles declared unreachable after remote-op
	// retries were exhausted (deduplicated, in declaration order).
	DegradedTiles []geom.Coord
	// RemappedWindows counts dead-tile global windows remapped to
	// shadow storage on surviving tiles.
	RemappedWindows int
	// LostSharedBytes is the shared-memory capacity whose contents were
	// lost with their tiles (remapped windows restart zeroed).
	LostSharedBytes int64

	// Work done to survive.
	RelayedRequests  int64 // requests forwarded through relay tiles
	RelayedResponses int64 // responses forwarded through relay tiles
	RetriedOps       int64 // remote ops reissued after a deadline
	TimedOutOps      int64 // remote-op deadlines that expired
	ExhaustedOps     int64 // remote ops abandoned after all retries
	DroppedResponses int64 // responses dropped (dead server or no path)
	DroppedForwards  int64 // relayed packets dropped (no path onward)
	LinkFlaps        int   // scheduled link-down events applied
	BitErrors        int64 // scheduled payload corruptions that hit
}

// Degraded reports whether the machine deviated from healthy execution
// at all.
func (r DegradationReport) Degraded() bool {
	return len(r.KilledTiles) > 0 || len(r.DegradedTiles) > 0 ||
		r.RetriedOps > 0 || r.TimedOutOps > 0 || r.ExhaustedOps > 0 ||
		r.RelayedRequests > 0 || r.RelayedResponses > 0 ||
		r.DroppedResponses > 0 || r.DroppedForwards > 0 ||
		r.LinkFlaps > 0 || r.BitErrors > 0
}

// String renders the report for CLI output.
func (r DegradationReport) String() string {
	if !r.Degraded() {
		return "degradation: none (healthy run)"
	}
	var b strings.Builder
	if r.Topology != "" {
		fmt.Fprintf(&b, "degradation report (%s topology):\n", r.Topology)
	} else {
		fmt.Fprintf(&b, "degradation report:\n")
	}
	fmt.Fprintf(&b, "  tiles killed      %d %v\n", len(r.KilledTiles), r.KilledTiles)
	fmt.Fprintf(&b, "  tiles degraded    %d %v\n", len(r.DegradedTiles), r.DegradedTiles)
	fmt.Fprintf(&b, "  windows remapped  %d (%d KiB shared memory lost)\n",
		r.RemappedWindows, r.LostSharedBytes/1024)
	fmt.Fprintf(&b, "  remote retries    %d reissued, %d timeouts, %d abandoned\n",
		r.RetriedOps, r.TimedOutOps, r.ExhaustedOps)
	fmt.Fprintf(&b, "  relay traffic     %d requests, %d responses forwarded\n",
		r.RelayedRequests, r.RelayedResponses)
	fmt.Fprintf(&b, "  losses            %d responses, %d forwards dropped\n",
		r.DroppedResponses, r.DroppedForwards)
	fmt.Fprintf(&b, "  injected          %d link flaps, %d bit errors landed\n", r.LinkFlaps, r.BitErrors)
	return b.String()
}

// markDegraded records a tile as degraded exactly once.
func (r *DegradationReport) markDegradedOnce(c geom.Coord) {
	for _, d := range r.DegradedTiles {
		if d == c {
			return
		}
	}
	r.DegradedTiles = append(r.DegradedTiles, c)
}

// Degradation returns a copy of the machine's degradation report.
func (m *Machine) Degradation() DegradationReport {
	r := m.degr
	r.Topology = m.topoName
	r.KilledTiles = append([]geom.Coord(nil), m.degr.KilledTiles...)
	r.DegradedTiles = append([]geom.Coord(nil), m.degr.DegradedTiles...)
	return r
}

// AttachSchedule arms a fault schedule: its events fire between machine
// cycles as the cycle counter passes each event's time. Pass nil to
// detach. The schedule must not be mutated afterwards.
func (m *Machine) AttachSchedule(s *inject.Schedule) error {
	if s == nil {
		m.schedEvents, m.schedAt = nil, 0
		return nil
	}
	if err := s.Validate(m.grid); err != nil {
		return err
	}
	m.schedEvents = s.Events()
	m.schedAt = 0
	return nil
}

// applyScheduled fires every armed event whose cycle has arrived.
func (m *Machine) applyScheduled() {
	for m.schedAt < len(m.schedEvents) && m.schedEvents[m.schedAt].Cycle <= m.cycle {
		e := m.schedEvents[m.schedAt]
		m.schedAt++
		switch e.Kind {
		case inject.KillTile:
			m.KillTile(e.Tile)
		case inject.LinkDown:
			m.net.SetLinkDown(e.Tile, e.Dir, true)
			m.degr.LinkFlaps++
		case inject.LinkUp:
			m.net.SetLinkDown(e.Tile, e.Dir, false)
		case inject.BitError:
			if m.net.CorruptPayload(e.Tile, e.Mask) {
				m.degr.BitErrors++
			}
		}
	}
}

// KillTile kills a live tile between cycles: its routers disappear from
// both networks (queued packets are lost), its cores fault, the kernel
// re-plans routing, and its global memory window is remapped — zeroed,
// the data is lost — onto the nearest healthy tile (the Section VIII
// degraded mode generalized to runtime). Returns false when the tile
// was already dead, construction-faulty, or out of the grid.
func (m *Machine) KillTile(c geom.Coord) bool {
	if !m.grid.In(c) {
		return false
	}
	i := m.grid.Index(c)
	t := m.tiles[i]
	if t == nil || t.dead {
		return false
	}
	t.dead = true
	m.fm.MarkFaulty(c)
	m.net.KillRouter(c)
	m.kernel.Refresh()
	for _, core := range t.Cores {
		if core.state != coreHalted && core.state != coreFaulted {
			core.Err = fmt.Errorf("tile %v killed at cycle %d", c, m.cycle)
			core.state = coreFaulted
			m.coreStopped(core, nil)
		}
	}
	win := int64(m.amap.GlobalWindowBytes())
	m.degr.LostSharedBytes += win
	if host, ok := m.nearestHealthy(c); ok {
		m.remap[i] = m.grid.Index(host)
		m.shadow[i] = make([]byte, win)
		m.degr.RemappedWindows++
		// Shadow windows previously hosted on the dead tile migrate to
		// the new host; their storage is host-agnostic, so unlike the
		// killed tile's own banks, their contents survive.
		for victim, hostIdx := range m.remap {
			if victim != i && hostIdx == i {
				m.remap[victim] = m.grid.Index(host)
			}
		}
	} else {
		// No healthy tile survives to host the window; accesses to it
		// will fault their cores with a structured error.
		for victim, hostIdx := range m.remap {
			if hostIdx == i {
				delete(m.remap, victim)
				delete(m.shadow, victim)
			}
		}
	}
	m.degr.KilledTiles = append(m.degr.KilledTiles, c)
	return true
}

// nearestHealthy returns the closest live tile to c by Manhattan
// distance (row-major order breaks ties, keeping the choice
// deterministic).
func (m *Machine) nearestHealthy(c geom.Coord) (geom.Coord, bool) {
	var best geom.Coord
	bestD := 1 << 30
	found := false
	m.grid.All(func(o geom.Coord) {
		t := m.tiles[m.grid.Index(o)]
		if t == nil || t.dead {
			return
		}
		if d := c.Manhattan(o); d < bestD {
			bestD, best, found = d, o, true
		}
	})
	return best, found
}
