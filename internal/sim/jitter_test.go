package sim

import (
	"testing"

	"waferscale/internal/geom"
	"waferscale/internal/inject"
)

// TestBackoffJitterBounds: jitter always lands in [0, span) and a
// non-positive span (RemoteTimeout 1, attempt 0 -> base/2 == 0)
// degrades to zero instead of dividing by it.
func TestBackoffJitterBounds(t *testing.T) {
	for span := int64(1); span <= 1<<20; span <<= 5 {
		for i := 0; i < 2000; i++ {
			j := backoffJitter(uint32(i*2654435761), int64(i)*37, geom.C(i%32, i/32%32), i%14, span)
			if j < 0 || j >= span {
				t.Fatalf("jitter %d outside [0, %d)", j, span)
			}
		}
	}
	if j := backoffJitter(1, 2, geom.C(3, 4), 5, 0); j != 0 {
		t.Fatalf("span 0 gave jitter %d", j)
	}
	if j := backoffJitter(1, 2, geom.C(3, 4), 5, -8); j != 0 {
		t.Fatalf("negative span gave jitter %d", j)
	}
}

// TestBackoffJitterSpreads: co-stalled cores — same cycle, same span,
// different tiles/lanes/tags — must not re-arm on the same deadline,
// or they re-collide at the dead router forever.
func TestBackoffJitterSpreads(t *testing.T) {
	const span = 1024
	seen := make(map[int64]bool)
	for lane := 0; lane < 14; lane++ {
		for x := 0; x < 8; x++ {
			seen[backoffJitter(uint32(0x2A|lane<<2), 500, geom.C(x, 3), lane, span)] = true
		}
	}
	if len(seen) < 56 { // 112 samples into 1024 buckets: collisions allowed, clumping not
		t.Fatalf("112 co-stalled ops spread over only %d distinct deadlines", len(seen))
	}
}

// TestBackoffJitterPure: the jitter is a function of the op's identity
// alone — no hidden RNG state — so replaying a machine cannot diverge.
func TestBackoffJitterPure(t *testing.T) {
	a := backoffJitter(0xBEEF, 12345, geom.C(7, 9), 3, 512)
	for i := 0; i < 100; i++ {
		if b := backoffJitter(0xBEEF, 12345, geom.C(7, 9), 3, 512); b != a {
			t.Fatalf("jitter not pure: %d then %d", a, b)
		}
	}
}

// TestRetryJitterKeepsDeterminism replays the flapped-link retry
// scenario twice on fresh machines: with hash-derived (not RNG-drawn)
// jitter, both runs must quiesce on the same cycle with identical
// degradation counters.
func TestRetryJitterKeepsDeterminism(t *testing.T) {
	run := func() (int64, DegradationReport, uint32) {
		cfg := smallConfig()
		m := newMachine(t, cfg, nil)
		m.RemoteTimeout = 60
		m.RemoteRetries = 5
		dst := geom.C(3, 0)
		addr := globalWindowAddr(cfg, dst)
		if err := m.WriteGlobal32(addr, 0x1234); err != nil {
			t.Fatal(err)
		}
		sched := inject.NewSchedule().FlapLink(geom.C(1, 0), geom.East, 0, 600)
		if err := m.AttachSchedule(sched); err != nil {
			t.Fatal(err)
		}
		c := startRemoteLoad(t, m, geom.C(0, 0), addr)
		if err := m.Run(20_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		if faults := m.Faults(); len(faults) > 0 {
			t.Fatalf("faults: %v", faults)
		}
		return m.Cycle(), m.Degradation(), c.Regs[2]
	}
	cyc1, rep1, v1 := run()
	cyc2, rep2, v2 := run()
	if v1 != 0x1234 || v2 != 0x1234 {
		t.Fatalf("loads returned %#x / %#x, want 0x1234", v1, v2)
	}
	if cyc1 != cyc2 {
		t.Fatalf("replay diverged: quiesced at cycle %d then %d", cyc1, cyc2)
	}
	if rep1.TimedOutOps != rep2.TimedOutOps || rep1.RetriedOps != rep2.RetriedOps {
		t.Fatalf("replay diverged: %+v vs %+v", rep1, rep2)
	}
	if rep1.RetriedOps == 0 {
		t.Fatal("scenario exercised no retries — jitter path not covered")
	}
}
