package sim

import (
	"encoding/binary"
	"fmt"
	"io"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/noc"
)

// Fixed intra-tile access latencies in cycles. Remote latencies emerge
// from the network simulation.
const (
	latPrivate   = 1 // core-private SRAM
	latLocalBank = 2 // tile-local bank through the crossbar
	latOwnGlobal = 3 // own tile's shared banks through the crossbar
)

// Remote memory operation codes carried in the packet tag.
const (
	remLoad = iota
	remStore
	remAmoAdd
	remAmoMin
)

// coreState is the execution state of one core.
type coreState int

const (
	coreRunning coreState = iota
	coreStalled           // fixed-latency access in flight
	coreRemote            // remote request in flight (or awaiting injection)
	coreHalted
	coreFaulted
)

// Core is one in-order WS-ISA core with its private SRAM.
type Core struct {
	tile geom.Coord
	idx  int

	Regs [16]uint32
	PC   uint32
	priv []byte

	state      coreState
	stallUntil int64
	// pending fixed-latency load destination (-1 when none).
	loadReg int
	loadVal uint32
	// pending remote op.
	rem struct {
		injected bool
		net      noc.Network
		dst      geom.Coord
		tag      uint32
		payload  uint64
		reg      int // destination register for load/amo (-1 for store)
		issuedAt int64
	}

	Instret     int64 // retired instructions
	StallFixed  int64 // cycles stalled on private/bank latency
	StallRemote int64 // cycles stalled on remote round trips
	RetryCycles int64 // cycles burned retrying bank conflicts
	Err         error // set when the core faults
}

// Halted reports whether the core stopped (halt or fault).
func (c *Core) Halted() bool { return c.state == coreHalted || c.state == coreFaulted }

// Tile is one tile: cores plus the memory chiplet's banks.
type Tile struct {
	Coord geom.Coord
	Cores []*Core
	banks [][]byte
	// bankBusy tracks the last cycle each bank served an access, for
	// single-port contention.
	bankBusy []int64
}

// Machine is the whole (or partial) waferscale system.
type Machine struct {
	Cfg    arch.Config
	grid   geom.Grid
	fm     *fault.Map
	amap   *arch.AddressMap
	kernel *noc.Kernel
	net    *noc.Sim
	tiles  []*Tile

	cycle   int64
	pending []responseToSend
	tagSeq  uint32

	traceW      io.Writer
	traceFilter TraceFilter

	// Stats.
	RemoteRequests int64
	RemoteLatency  int64 // summed cycles from issue to completion
	BankConflicts  int64
}

type responseToSend struct {
	net     noc.Network
	src     geom.Coord
	dst     geom.Coord
	tag     uint32
	payload uint64
}

// NewMachine builds a machine for a configuration and fault map. The
// configuration's tile array must match the fault map's grid.
func NewMachine(cfg arch.Config, fm *fault.Map) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Grid() != fm.Grid() {
		return nil, fmt.Errorf("sim: config grid %v != fault map grid %v", cfg.Grid(), fm.Grid())
	}
	netSim, err := noc.NewSim(fm, noc.DefaultSimConfig())
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:    cfg,
		grid:   cfg.Grid(),
		fm:     fm,
		amap:   arch.NewAddressMap(cfg),
		kernel: noc.NewKernel(fm),
		net:    netSim,
		tiles:  make([]*Tile, cfg.Grid().Size()),
	}
	netSim.OnDeliver = m.onDeliver
	m.grid.All(func(c geom.Coord) {
		if fm.Faulty(c) {
			return
		}
		t := &Tile{Coord: c}
		for i := 0; i < cfg.CoresPerTile; i++ {
			t.Cores = append(t.Cores, &Core{
				tile:    c,
				idx:     i,
				priv:    make([]byte, cfg.PrivateMemPerCore),
				state:   coreHalted, // cores start parked until a program loads
				loadReg: -1,
			})
		}
		t.banks = make([][]byte, cfg.SharedBanksPerTile)
		t.bankBusy = make([]int64, cfg.SharedBanksPerTile)
		for b := range t.banks {
			t.banks[b] = make([]byte, cfg.BankBytes)
		}
		m.tiles[m.grid.Index(c)] = t
	})
	return m, nil
}

// Tile returns the tile at c, or nil for faulty tiles.
func (m *Machine) Tile(c geom.Coord) *Tile {
	if !m.grid.In(c) {
		return nil
	}
	return m.tiles[m.grid.Index(c)]
}

// Cycle returns the elapsed cycles.
func (m *Machine) Cycle() int64 { return m.cycle }

// Net exposes the network simulator's statistics.
func (m *Machine) Net() *noc.Sim { return m.net }

// LoadProgram writes an assembled program into a core's private SRAM
// at address 0, resets the core and starts it.
func (m *Machine) LoadProgram(tile geom.Coord, core int, words []uint32) error {
	t := m.Tile(tile)
	if t == nil {
		return fmt.Errorf("sim: tile %v is faulty or out of range", tile)
	}
	if core < 0 || core >= len(t.Cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	c := t.Cores[core]
	if len(words)*4 > len(c.priv) {
		return fmt.Errorf("sim: program (%d words) exceeds private SRAM", len(words))
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(c.priv[4*i:], w)
	}
	c.PC = 0
	c.Regs = [16]uint32{}
	c.state = coreRunning
	c.Err = nil
	c.Instret = 0
	return nil
}

// WritePrivate32 is the host backdoor into a core's private SRAM (the
// JTAG path in the prototype), used to pass per-core parameters.
func (m *Machine) WritePrivate32(tile geom.Coord, core int, addr uint32, v uint32) error {
	t := m.Tile(tile)
	if t == nil {
		return fmt.Errorf("sim: tile %v is faulty or out of range", tile)
	}
	if core < 0 || core >= len(t.Cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	if int(addr)+4 > len(t.Cores[core].priv) || addr%4 != 0 {
		return fmt.Errorf("sim: bad private address %#x", addr)
	}
	binary.LittleEndian.PutUint32(t.Cores[core].priv[addr:], v)
	return nil
}

// ReadPrivate32 is the host backdoor for reads from private SRAM.
func (m *Machine) ReadPrivate32(tile geom.Coord, core int, addr uint32) (uint32, error) {
	t := m.Tile(tile)
	if t == nil {
		return 0, fmt.Errorf("sim: tile %v is faulty or out of range", tile)
	}
	if core < 0 || core >= len(t.Cores) {
		return 0, fmt.Errorf("sim: core %d out of range", core)
	}
	if int(addr)+4 > len(t.Cores[core].priv) || addr%4 != 0 {
		return 0, fmt.Errorf("sim: bad private address %#x", addr)
	}
	return binary.LittleEndian.Uint32(t.Cores[core].priv[addr:]), nil
}

// Broadcast loads the same program into every core of every healthy
// tile — the common case the paper's JTAG broadcast mode optimizes.
func (m *Machine) Broadcast(words []uint32) error {
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for i := range t.Cores {
			if err := m.LoadProgram(t.Coord, i, words); err != nil {
				return err
			}
		}
	}
	return nil
}

// globalID returns a core's global id: tileIndex*coresPerTile + idx.
func (m *Machine) globalID(c *Core) uint32 {
	return uint32(m.grid.Index(c.tile)*m.Cfg.CoresPerTile + c.idx)
}

// bank32 accesses a bank word (little endian).
func bank32(b []byte, off uint32) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
func setBank32(b []byte, off uint32, v uint32) {
	binary.LittleEndian.PutUint32(b[off:], v)
}

// ReadGlobal32 is the host (JTAG-style) backdoor into shared memory,
// used for workload setup and result verification.
func (m *Machine) ReadGlobal32(addr uint32) (uint32, error) {
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return 0, err
	}
	t := m.Tile(tile)
	if t == nil {
		return 0, fmt.Errorf("sim: global address %#x lives on faulty tile %v", addr, tile)
	}
	return bank32(t.banks[bank], off), nil
}

// WriteGlobal32 is the host backdoor for stores.
func (m *Machine) WriteGlobal32(addr uint32, v uint32) error {
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return err
	}
	t := m.Tile(tile)
	if t == nil {
		return fmt.Errorf("sim: global address %#x lives on faulty tile %v", addr, tile)
	}
	setBank32(t.banks[bank], off, v)
	return nil
}

// onDeliver handles packets ejecting at their destination tile.
func (m *Machine) onDeliver(p noc.Packet) {
	if p.Kind == noc.Request {
		// Serve the memory operation on this tile's banks, then queue
		// the response onto the complementary network (the pairing is
		// baked into the router hardware in the prototype).
		result := m.serveRemote(p)
		m.pending = append(m.pending, responseToSend{
			net:     p.Net.Complement(),
			src:     p.Dst,
			dst:     p.Src,
			tag:     p.Tag,
			payload: uint64(result),
		})
		return
	}
	// Response: complete the waiting core.
	t := m.Tile(p.Dst)
	if t == nil {
		return
	}
	coreIdx := int(p.Tag >> 2 & 0xF)
	if coreIdx >= len(t.Cores) {
		return
	}
	c := t.Cores[coreIdx]
	if c.state != coreRemote || c.rem.tag != p.Tag {
		return // stale response; ignore
	}
	if c.rem.reg > 0 { // r0 is hardwired zero
		c.Regs[c.rem.reg] = uint32(p.Payload)
	}
	m.RemoteRequests++
	m.RemoteLatency += m.cycle - c.rem.issuedAt
	c.state = coreRunning
}

// serveRemote performs a remote memory op at the destination tile.
// Payload layout: addr in the high 32 bits, data in the low 32.
func (m *Machine) serveRemote(p noc.Packet) uint32 {
	addr := uint32(p.Payload >> 32)
	data := uint32(p.Payload)
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil || tile != p.Dst {
		return 0xDEAD0000
	}
	t := m.Tile(tile)
	if t == nil {
		return 0xDEAD0001
	}
	old := bank32(t.banks[bank], off)
	switch p.Tag & 0b11 {
	case remStore:
		setBank32(t.banks[bank], off, data)
	case remAmoAdd:
		setBank32(t.banks[bank], off, old+data)
	case remAmoMin:
		if int32(data) < int32(old) {
			setBank32(t.banks[bank], off, data)
		}
	}
	return old
}

// Step advances the machine one cycle.
func (m *Machine) Step() {
	m.cycle++
	m.net.Step()
	// Inject queued responses (retrying those that met backpressure).
	retry := m.pending[:0]
	for _, r := range m.pending {
		if _, err := m.net.Inject(r.net, r.src, r.dst, noc.Response, r.tag, r.payload); err != nil {
			retry = append(retry, r)
		}
	}
	m.pending = retry
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		// Rotate the stepping order so crossbar-bank arbitration is
		// fair: with fixed priority, spinning readers on a bank can
		// starve a later core's write indefinitely (barrier livelock).
		n := len(t.Cores)
		start := int(m.cycle) % n
		for i := 0; i < n; i++ {
			m.stepCore(t, t.Cores[(start+i)%n])
		}
	}
}

// Run steps until every started core halts or maxCycles pass.
func (m *Machine) Run(maxCycles int64) error {
	for i := int64(0); i < maxCycles; i++ {
		if m.AllHalted() {
			return nil
		}
		m.Step()
	}
	if m.AllHalted() {
		return nil
	}
	return fmt.Errorf("sim: not halted after %d cycles", maxCycles)
}

// AllHalted reports whether every core is halted or faulted.
func (m *Machine) AllHalted() bool {
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for _, c := range t.Cores {
			if !c.Halted() {
				return false
			}
		}
	}
	return true
}

// Faults returns the errors of all faulted cores.
func (m *Machine) Faults() []error {
	var out []error
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for _, c := range t.Cores {
			if c.state == coreFaulted {
				out = append(out, fmt.Errorf("tile %v core %d @pc=%#x: %w", t.Coord, c.idx, c.PC, c.Err))
			}
		}
	}
	return out
}

// AvgRemoteLatency returns mean remote access round-trip cycles.
func (m *Machine) AvgRemoteLatency() float64 {
	if m.RemoteRequests == 0 {
		return 0
	}
	return float64(m.RemoteLatency) / float64(m.RemoteRequests)
}

func (m *Machine) fault(c *Core, format string, args ...any) {
	c.Err = fmt.Errorf(format, args...)
	c.state = coreFaulted
}

func (m *Machine) stepCore(t *Tile, c *Core) {
	switch c.state {
	case coreHalted, coreFaulted:
		return
	case coreStalled:
		if m.cycle < c.stallUntil {
			c.StallFixed++
			return
		}
		if c.loadReg > 0 { // r0 is hardwired zero
			c.Regs[c.loadReg] = c.loadVal
		}
		c.loadReg = -1
		c.state = coreRunning
		return // the completing cycle does not also execute
	case coreRemote:
		c.StallRemote++
		if !c.rem.injected {
			if _, err := m.net.Inject(c.rem.net, c.tile, c.rem.dst, noc.Request, c.rem.tag, c.rem.payload); err == nil {
				c.rem.injected = true
			}
		}
		return
	}
	m.execute(t, c)
}

func (m *Machine) execute(t *Tile, c *Core) {
	if int(c.PC)+4 > len(c.priv) {
		m.fault(c, "pc outside private SRAM")
		return
	}
	in := Decode(binary.LittleEndian.Uint32(c.priv[c.PC:]))
	m.trace(c, in)
	next := c.PC + 4
	r := &c.Regs
	switch in.Op {
	case OpNop:
	case OpHalt:
		c.state = coreHalted
		c.Instret++
		return
	case OpLI:
		r[in.Rd] = uint32(in.Imm)
	case OpLUI:
		r[in.Rd] = uint32(in.Imm) << 16
	case OpOrLo:
		r[in.Rd] |= uint32(in.Imm) & 0xFFFF
	case OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case OpShl:
		r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 31)
	case OpShr:
		r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 31)
	case OpSlt:
		r[in.Rd] = b2u(int32(r[in.Rs1]) < int32(r[in.Rs2]))
	case OpSltu:
		r[in.Rd] = b2u(r[in.Rs1] < r[in.Rs2])
	case OpAddi:
		r[in.Rd] = r[in.Rs1] + uint32(in.Imm)
	case OpBeq:
		if r[in.Rs1] == r[in.Rs2] {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBne:
		if r[in.Rs1] != r[in.Rs2] {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBlt:
		if int32(r[in.Rs1]) < int32(r[in.Rs2]) {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBge:
		if int32(r[in.Rs1]) >= int32(r[in.Rs2]) {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpJal:
		r[in.Rd] = c.PC + 4
		next = c.PC + 4 + uint32(in.Imm)*4
	case OpJr:
		next = r[in.Rs1]
	case OpCoreID:
		r[in.Rd] = m.globalID(c)
	case OpNCores:
		r[in.Rd] = uint32(m.Cfg.TotalCores())
	case OpLw, OpSw, OpAmoAdd, OpAmoMin:
		if !m.memOp(t, c, in) {
			return // retry same instruction next cycle (bank conflict)
		}
		c.Instret++
		c.PC = next
		return
	default:
		m.fault(c, "illegal opcode %d", int(in.Op))
		return
	}
	r[0] = 0 // r0 is hardwired zero
	c.Instret++
	c.PC = next
}

// memOp issues a memory instruction; it returns false when the access
// must retry next cycle (crossbar bank conflict).
func (m *Machine) memOp(t *Tile, c *Core, in Instr) bool {
	var addr uint32
	if in.Op == OpAmoAdd || in.Op == OpAmoMin {
		addr = c.Regs[in.Rs1]
	} else {
		addr = c.Regs[in.Rs1] + uint32(in.Imm)
	}
	if addr%4 != 0 {
		m.fault(c, "unaligned access %#x", addr)
		return true
	}
	switch m.amap.Region(addr) {
	case arch.RegionPrivate:
		switch in.Op {
		case OpLw:
			c.loadVal = binary.LittleEndian.Uint32(c.priv[addr:])
			c.loadReg = in.Rd
		case OpSw:
			binary.LittleEndian.PutUint32(c.priv[addr:], c.Regs[in.Rs2])
			c.loadReg = -1
		default:
			// Atomics on private memory are pointless but harmless.
			old := binary.LittleEndian.Uint32(c.priv[addr:])
			m.applyAmo(c.priv[addr:addr+4], in.Op, old, c.Regs[in.Rs2])
			c.loadVal = old
			c.loadReg = in.Rd
		}
		c.state = coreStalled
		c.stallUntil = m.cycle + latPrivate
		return true

	case arch.RegionLocalBank:
		bank := m.Cfg.GlobalBanksPerTile // the tile-local bank
		off := addr - arch.LocalBankBase
		return m.bankAccess(t, c, in, bank, off, latLocalBank)

	case arch.RegionGlobal:
		tile, bank, off, err := m.amap.GlobalTarget(addr)
		if err != nil {
			m.fault(c, "bad global address %#x: %v", addr, err)
			return true
		}
		if tile == c.tile {
			return m.bankAccess(t, c, in, bank, off, latOwnGlobal)
		}
		return m.remoteOp(c, in, tile, addr)
	}
	m.fault(c, "unmapped address %#x", addr)
	return true
}

// bankAccess models the intra-tile crossbar: each bank serves one
// access per cycle; a conflicting core retries next cycle.
func (m *Machine) bankAccess(t *Tile, c *Core, in Instr, bank int, off uint32, lat int64) bool {
	if t.bankBusy[bank] == m.cycle {
		m.BankConflicts++
		c.RetryCycles++
		return false
	}
	t.bankBusy[bank] = m.cycle
	b := t.banks[bank]
	old := bank32(b, off)
	switch in.Op {
	case OpLw:
		c.loadVal = old
		c.loadReg = in.Rd
	case OpSw:
		setBank32(b, off, c.Regs[in.Rs2])
		c.loadReg = -1
	default:
		m.applyAmo(b[off:off+4], in.Op, old, c.Regs[in.Rs2])
		c.loadVal = old
		c.loadReg = in.Rd
	}
	c.state = coreStalled
	c.stallUntil = m.cycle + lat
	return true
}

func (m *Machine) applyAmo(word []byte, op Op, old, operand uint32) {
	switch op {
	case OpAmoAdd:
		binary.LittleEndian.PutUint32(word, old+operand)
	case OpAmoMin:
		if int32(operand) < int32(old) {
			binary.LittleEndian.PutUint32(word, operand)
		}
	}
}

// remoteOp issues a request packet for a remote global access.
func (m *Machine) remoteOp(c *Core, in Instr, dst geom.Coord, addr uint32) bool {
	dec, err := m.kernel.Decide(c.tile, dst)
	if err != nil || !dec.Reachable {
		m.fault(c, "tile %v unreachable from %v", dst, c.tile)
		return true
	}
	if len(dec.Via) > 0 {
		// Relay routing needs kernel software on the relay tile; the
		// machine model requires directly reachable pairs.
		m.fault(c, "tile %v reachable from %v only via relays; not supported by the hardware path", dst, c.tile)
		return true
	}
	op := uint32(remLoad)
	reg := in.Rd
	data := uint32(0)
	switch in.Op {
	case OpSw:
		op = remStore
		reg = -1
		data = c.Regs[in.Rs2]
	case OpAmoAdd:
		op = remAmoAdd
		data = c.Regs[in.Rs2]
	case OpAmoMin:
		op = remAmoMin
		data = c.Regs[in.Rs2]
	}
	m.tagSeq++
	tag := op | uint32(c.idx)<<2 | m.tagSeq<<6
	c.rem.injected = false
	c.rem.net = dec.Request
	c.rem.dst = dst
	c.rem.tag = tag
	c.rem.payload = uint64(addr)<<32 | uint64(data)
	c.rem.reg = reg
	c.rem.issuedAt = m.cycle
	c.state = coreRemote
	// Try to inject immediately.
	if _, err := m.net.Inject(dec.Request, c.tile, dst, noc.Request, tag, c.rem.payload); err == nil {
		c.rem.injected = true
	}
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
