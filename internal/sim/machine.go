package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/inject"
	"waferscale/internal/noc"
	"waferscale/internal/parallel"
)

// Fixed intra-tile access latencies in cycles. Remote latencies emerge
// from the network simulation.
const (
	latPrivate   = 1 // core-private SRAM
	latLocalBank = 2 // tile-local bank through the crossbar
	latOwnGlobal = 3 // own tile's shared banks through the crossbar
)

// Remote memory operation codes carried in the packet tag.
const (
	remLoad = iota
	remStore
	remAmoAdd
	remAmoMin
)

// coreState is the execution state of one core.
type coreState int

const (
	coreRunning coreState = iota
	coreStalled           // fixed-latency access in flight
	coreRemote            // remote request in flight (or awaiting injection)
	coreHalted
	coreFaulted
)

// Core is one in-order WS-ISA core with its private SRAM.
type Core struct {
	tile geom.Coord
	idx  int

	Regs [16]uint32
	PC   uint32
	priv []byte

	state      coreState
	stallUntil int64
	// pending fixed-latency load destination (-1 when none).
	loadReg int
	loadVal uint32
	// pending remote op.
	rem struct {
		injected bool
		net      noc.Network
		dst      geom.Coord
		tag      uint32
		payload  uint64
		reg      int // destination register for load/amo (-1 for store)
		issuedAt int64
		deadline int64 // cycle after which the op is declared lost
		attempts int   // re-plan/retry count so far
	}

	Instret     int64 // retired instructions
	StallFixed  int64 // cycles stalled on private/bank latency
	StallRemote int64 // cycles stalled on remote round trips
	RetryCycles int64 // cycles burned retrying bank conflicts
	Err         error // set when the core faults
}

// Halted reports whether the core stopped (halt or fault).
func (c *Core) Halted() bool { return c.state == coreHalted || c.state == coreFaulted }

// Tile is one tile: cores plus the memory chiplet's banks.
type Tile struct {
	Coord geom.Coord
	Cores []*Core
	banks [][]byte
	// bankBusy tracks the last cycle each bank served an access, for
	// single-port contention.
	bankBusy []int64
	// dead marks a tile killed at runtime (vs. nil for tiles faulty at
	// construction). Its cores are faulted and its banks unreachable;
	// the struct is kept so the cores' stats and errors stay readable.
	dead bool

	// run lists the indices of cores that are not halted or faulted, in
	// ascending order — the per-tile fast path that lets Step skip
	// parked cores and entirely quiescent tiles instead of touching all
	// 14×N cores every cycle. A core that stops mid-cycle only marks
	// runDirty; the list is compacted at the tile's next step so the
	// in-flight iteration stays stable.
	run      []int
	runDirty bool
}

// compactRun drops stopped cores from the runnable list.
func (t *Tile) compactRun() {
	keep := t.run[:0]
	for _, idx := range t.run {
		if !t.Cores[idx].Halted() {
			keep = append(keep, idx)
		}
	}
	t.run = keep
	t.runDirty = false
}

// addRunnable inserts a core index into the sorted runnable list (no-op
// when already present).
func (t *Tile) addRunnable(idx int) {
	i := sort.SearchInts(t.run, idx)
	if i < len(t.run) && t.run[i] == idx {
		return
	}
	t.run = append(t.run, 0)
	copy(t.run[i+1:], t.run[i:])
	t.run[i] = idx
}

// Machine is the whole (or partial) waferscale system.
type Machine struct {
	Cfg    arch.Config
	grid   geom.Grid
	fm     *fault.Map
	amap   *arch.AddressMap
	kernel *noc.Kernel
	net    *noc.Sim
	tiles  []*Tile
	// topoName is the normalized NoC topology the machine was built
	// with (see TopologyName).
	topoName string

	cycle   int64
	pending []responseToSend
	tagSeq  uint32

	traceW      io.Writer
	traceFilter TraceFilter

	// LatencyModel, when set, replaces the cycle-stepped packet network
	// with a timing model: remote memory ops apply immediately and their
	// cores stall for the modeled round trip, and Step skips the network
	// simulation entirely (see latmodel.go). Runs with a model attached
	// are approximate; label results with TimingModelName and never
	// cache-key them as cycle-exact. Set only between cycles on a
	// machine with no remote ops in flight.
	LatencyModel noc.LatencyModel
	// LatencyRate is the uniform background load (packets/tile/cycle)
	// the model's queueing terms are evaluated at; 0 prices unloaded
	// round trips.
	LatencyRate float64

	// Remote-op robustness knobs. A remote access outstanding past
	// RemoteTimeout cycles is declared lost and reissued along a freshly
	// planned route; after RemoteRetries reissues the destination is
	// marked degraded and the core faults with a structured error.
	// RemoteTimeout <= 0 disables deadlines (the pre-chaos behaviour).
	RemoteTimeout int64
	RemoteRetries int

	// Runtime-fault state (see degradation.go).
	schedEvents []inject.Event
	schedAt     int
	pendingFwd  []forwardToSend
	// remap[tileIdx] is the grid index of the healthy tile hosting the
	// dead tile's global window; shadow[tileIdx] is the zero-initialized
	// reserve storage for that window (the data itself is lost).
	remap  map[int]int
	shadow map[int][]byte
	degr   DegradationReport

	// Progress, when non-nil, is invoked by RunCtx every
	// runProgressStride cycles with the current machine cycle — the
	// cycles-stepped feed the serve layer streams to clients. It runs
	// on the goroutine driving the machine, never concurrently.
	Progress func(cycle int64)

	// Stats.
	RemoteRequests int64
	RemoteLatency  int64 // summed cycles from issue to completion
	BankConflicts  int64

	// running counts cores that are neither halted nor faulted, so
	// AllHalted is a counter check instead of a 14×N scan per cycle.
	running int
	// fullScan disables the runnable-list fast path: Step touches every
	// core of every tile and AllHalted scans, exactly like the
	// pre-optimization engine. Differential tests flip this to prove the
	// fast path is behavior-identical; it is never set in production.
	fullScan bool

	// Shards partitions the tile grid into that many contiguous row
	// bands whose core pipelines advance concurrently (<= 1 keeps the
	// serial loop). The decomposition is bit-identical to the serial
	// machine at any shard or worker count: a core's in-cycle execution
	// reads only core/tile-local state plus cycle-frozen machine state,
	// and every shared-state action — remote-op issue, the per-cycle
	// step of a core awaiting a remote response, injection retries — is
	// staged into per-band lists that a serial commit replays in (band,
	// tile, rotated-core) order, which is exactly the serial order.
	// Tracing (SetTrace) forces the serial loop. The network engine is
	// sharded independently via Net().Shards.
	Shards int
	// Workers caps the gang width driving the shard bands (0 =
	// GOMAXPROCS, clamped to Shards). Purely a wall-clock knob.
	Workers int
	msh     *machEngine
}

// stagedKind discriminates the shared-state actions a band defers to
// the serial commit.
type stagedKind uint8

const (
	// stageIssue replays remoteOp: a core executed a memory instruction
	// targeting another tile and must issue the request packet.
	stageIssue stagedKind = iota
	// stageRemoteStep replays the per-cycle step of a core in
	// coreRemote state: injection retry and deadline handling.
	stageRemoteStep
)

// stagedOp is one deferred shared-state action.
type stagedOp struct {
	kind stagedKind
	c    *Core
	in   Instr
	addr uint32
}

// machBand is one contiguous row band of tiles with its staged ops and
// private counters. The pad keeps the append-mutated headers of
// neighboring bands off a shared cache line.
type machBand struct {
	lo, hi        int // tile index range [lo, hi)
	ops           []stagedOp
	bankConflicts int64
	runningDelta  int
	_             [64]byte
}

// machEngine is the lazily built sharded-stepping state.
type machEngine struct {
	shards  int
	workers int
	gang    *parallel.Gang
	bands   []machBand
	// stepFn is the hoisted phase-1 closure handed to gang.Run, built
	// once so the per-cycle loop allocates nothing.
	stepFn func(b int)
}

type responseToSend struct {
	net noc.Network
	src geom.Coord
	// finalDst is the requesting tile. The response may be injected
	// toward a relay when the direct return path is broken.
	finalDst geom.Coord
	tag      uint32
	result   uint32
}

// forwardToSend is a packet parked at a relay tile awaiting
// re-injection (it met backpressure or arrived this cycle).
type forwardToSend struct {
	at  geom.Coord
	pkt noc.Packet
}

// NewMachine builds a machine for a configuration and fault map. The
// configuration's tile array must match the fault map's grid.
func NewMachine(cfg arch.Config, fm *fault.Map) (*Machine, error) {
	return NewMachineTopology(cfg, fm, "")
}

// NewMachineTopology builds a machine whose interconnect uses the named
// NoC topology ("" = the prototype's dual-DoR mesh; see
// noc.TopologyNames). Transport — every remote load/store, DMA and
// barrier packet — rides the named link graph; the fault-bypass relay
// planner (noc.Kernel) still reasons in mesh row/column terms, so on
// non-mesh topologies relays are a conservative fallback: correct
// (relay hops are ordinary packets on the real topology) but not
// necessarily minimal.
func NewMachineTopology(cfg arch.Config, fm *fault.Map, topology string) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fm == nil {
		return nil, fmt.Errorf("sim: nil fault map")
	}
	if cfg.Grid() != fm.Grid() {
		return nil, fmt.Errorf("sim: config grid %v != fault map grid %v", cfg.Grid(), fm.Grid())
	}
	name, err := noc.NormalizeTopology(topology)
	if err != nil {
		return nil, err
	}
	topo, err := noc.NewTopology(name, cfg.Grid())
	if err != nil {
		return nil, err
	}
	netSim, err := noc.NewSimTopology(fm, noc.DefaultSimConfig(), topo)
	if err != nil {
		return nil, err
	}
	g := cfg.Grid()
	m := &Machine{
		Cfg:      cfg,
		grid:     g,
		fm:       fm,
		amap:     arch.NewAddressMap(cfg),
		kernel:   noc.NewKernel(fm),
		net:      netSim,
		tiles:    make([]*Tile, g.Size()),
		topoName: name,
		// Worst-case healthy round trip is ~2*(W+H) hops of a few cycles
		// each plus queuing; 64x the semi-perimeter leaves generous slack
		// so healthy runs never trip a false timeout.
		RemoteTimeout: int64(64 * (g.W + g.H)),
		RemoteRetries: 3,
		remap:         make(map[int]int),
		shadow:        make(map[int][]byte),
	}
	netSim.OnDeliver = m.onDeliver
	m.grid.All(func(c geom.Coord) {
		if fm.Faulty(c) {
			return
		}
		t := &Tile{Coord: c}
		for i := 0; i < cfg.CoresPerTile; i++ {
			t.Cores = append(t.Cores, &Core{
				tile:    c,
				idx:     i,
				priv:    make([]byte, cfg.PrivateMemPerCore),
				state:   coreHalted, // cores start parked until a program loads
				loadReg: -1,
			})
		}
		t.banks = make([][]byte, cfg.SharedBanksPerTile)
		t.bankBusy = make([]int64, cfg.SharedBanksPerTile)
		for b := range t.banks {
			t.banks[b] = make([]byte, cfg.BankBytes)
		}
		m.tiles[m.grid.Index(c)] = t
	})
	return m, nil
}

// Tile returns the tile at c, or nil for faulty or runtime-killed
// tiles.
func (m *Machine) Tile(c geom.Coord) *Tile {
	if !m.grid.In(c) {
		return nil
	}
	t := m.tiles[m.grid.Index(c)]
	if t == nil || t.dead {
		return nil
	}
	return t
}

// Cycle returns the elapsed cycles.
func (m *Machine) Cycle() int64 { return m.cycle }

// TopologyName returns the normalized name of the NoC topology the
// machine was built with ("mesh", "cmesh", "express" or "vertical").
func (m *Machine) TopologyName() string { return m.topoName }

// Net exposes the network simulator's statistics.
func (m *Machine) Net() *noc.Sim { return m.net }

// LoadProgram writes an assembled program into a core's private SRAM
// at address 0, resets the core and starts it.
func (m *Machine) LoadProgram(tile geom.Coord, core int, words []uint32) error {
	t := m.Tile(tile)
	if t == nil {
		return fmt.Errorf("sim: tile %v is faulty or out of range", tile)
	}
	if core < 0 || core >= len(t.Cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	c := t.Cores[core]
	if len(words)*4 > len(c.priv) {
		return fmt.Errorf("sim: program (%d words) exceeds private SRAM", len(words))
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(c.priv[4*i:], w)
	}
	wasStopped := c.Halted()
	c.PC = 0
	c.Regs = [16]uint32{}
	c.state = coreRunning
	c.Err = nil
	c.Instret = 0
	if wasStopped {
		m.running++
		t.addRunnable(core)
	}
	return nil
}

// WritePrivate32 is the host backdoor into a core's private SRAM (the
// JTAG path in the prototype), used to pass per-core parameters.
func (m *Machine) WritePrivate32(tile geom.Coord, core int, addr uint32, v uint32) error {
	t := m.Tile(tile)
	if t == nil {
		return fmt.Errorf("sim: tile %v is faulty or out of range", tile)
	}
	if core < 0 || core >= len(t.Cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	if int(addr)+4 > len(t.Cores[core].priv) || addr%4 != 0 {
		return fmt.Errorf("sim: bad private address %#x", addr)
	}
	binary.LittleEndian.PutUint32(t.Cores[core].priv[addr:], v)
	return nil
}

// ReadPrivate32 is the host backdoor for reads from private SRAM.
func (m *Machine) ReadPrivate32(tile geom.Coord, core int, addr uint32) (uint32, error) {
	t := m.Tile(tile)
	if t == nil {
		return 0, fmt.Errorf("sim: tile %v is faulty or out of range", tile)
	}
	if core < 0 || core >= len(t.Cores) {
		return 0, fmt.Errorf("sim: core %d out of range", core)
	}
	if int(addr)+4 > len(t.Cores[core].priv) || addr%4 != 0 {
		return 0, fmt.Errorf("sim: bad private address %#x", addr)
	}
	return binary.LittleEndian.Uint32(t.Cores[core].priv[addr:]), nil
}

// Broadcast loads the same program into every core of every healthy
// tile — the common case the paper's JTAG broadcast mode optimizes.
func (m *Machine) Broadcast(words []uint32) error {
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for i := range t.Cores {
			if err := m.LoadProgram(t.Coord, i, words); err != nil {
				return err
			}
		}
	}
	return nil
}

// globalID returns a core's global id: tileIndex*coresPerTile + idx.
func (m *Machine) globalID(c *Core) uint32 {
	return uint32(m.grid.Index(c.tile)*m.Cfg.CoresPerTile + c.idx)
}

// bank32 accesses a bank word (little endian).
func bank32(b []byte, off uint32) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
func setBank32(b []byte, off uint32, v uint32) {
	binary.LittleEndian.PutUint32(b[off:], v)
}

// globalSlice returns the 4-byte word backing a global (tile, bank,
// offset) triple: the tile's own bank when it is alive, or the shadow
// reserve storage when the tile died at runtime and its window was
// remapped. Returns nil when the address has no backing at all.
func (m *Machine) globalSlice(tile geom.Coord, bank int, off uint32) []byte {
	i := m.grid.Index(tile)
	if t := m.tiles[i]; t != nil && !t.dead {
		return t.banks[bank][off : off+4]
	}
	if buf, ok := m.shadow[i]; ok {
		o := uint32(bank)*uint32(m.Cfg.BankBytes) + off
		return buf[o : o+4]
	}
	return nil
}

// routeTarget returns the tile that currently serves a global address:
// the owning tile, or — after the owner died at runtime — the healthy
// tile hosting its remapped window (the Section VIII degraded mode).
func (m *Machine) routeTarget(addr uint32) (geom.Coord, error) {
	tile, _, _, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return geom.Coord{}, err
	}
	i := m.grid.Index(tile)
	if t := m.tiles[i]; t != nil && !t.dead {
		return tile, nil
	}
	if host, ok := m.remap[i]; ok {
		return m.grid.Coord(host), nil
	}
	return geom.Coord{}, fmt.Errorf("sim: global address %#x lives on faulty tile %v with no fallback", addr, tile)
}

// ReadGlobal32 is the host (JTAG-style) backdoor into shared memory,
// used for workload setup and result verification. It follows runtime
// remaps into the shadow storage.
func (m *Machine) ReadGlobal32(addr uint32) (uint32, error) {
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return 0, err
	}
	b := m.globalSlice(tile, bank, off)
	if b == nil {
		return 0, fmt.Errorf("sim: global address %#x lives on faulty tile %v", addr, tile)
	}
	return binary.LittleEndian.Uint32(b), nil
}

// WriteGlobal32 is the host backdoor for stores.
func (m *Machine) WriteGlobal32(addr uint32, v uint32) error {
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return err
	}
	b := m.globalSlice(tile, bank, off)
	if b == nil {
		return fmt.Errorf("sim: global address %#x lives on faulty tile %v", addr, tile)
	}
	binary.LittleEndian.PutUint32(b, v)
	return nil
}

// onDeliver handles packets ejecting at a tile: a request is served by
// this tile (or forwarded when this tile is a relay on a kernel
// detour), a response completes the waiting core (or is forwarded when
// this tile relays the return path).
func (m *Machine) onDeliver(p noc.Packet) {
	if p.Kind == noc.Request {
		addr := uint32(p.Payload >> 32)
		if target, err := m.routeTarget(addr); err == nil && target != p.Dst {
			// This tile is a relay on a multi-leg detour (paper Section
			// VI): spend a cycle and re-inject toward the target.
			m.pendingFwd = append(m.pendingFwd, forwardToSend{at: p.Dst, pkt: p})
			return
		}
		// Serve the memory operation on this tile's banks, then queue
		// the response onto the complementary network (the pairing is
		// baked into the router hardware in the prototype).
		result := m.serveRemote(p)
		m.pending = append(m.pending, responseToSend{
			net:      p.Net.Complement(),
			src:      p.Dst,
			finalDst: p.Src,
			tag:      p.Tag,
			result:   result,
		})
		return
	}
	// Response: payload high bits carry the requesting tile's index so
	// relay tiles can forward responses whose direct return path broke.
	if fi := int(p.Payload >> 32); fi >= 0 && fi < m.grid.Size() {
		if final := m.grid.Coord(fi); final != p.Dst {
			m.pendingFwd = append(m.pendingFwd, forwardToSend{at: p.Dst, pkt: p})
			return
		}
	}
	// Complete the waiting core.
	t := m.Tile(p.Dst)
	if t == nil {
		return
	}
	coreIdx := int(p.Tag >> 2 & 0xF)
	if coreIdx >= len(t.Cores) {
		return
	}
	c := t.Cores[coreIdx]
	if c.state != coreRemote || c.rem.tag != p.Tag {
		return // stale response (e.g. a retried op's first try); ignore
	}
	if c.rem.reg > 0 { // r0 is hardwired zero
		c.Regs[c.rem.reg] = uint32(p.Payload)
	}
	m.RemoteRequests++
	m.RemoteLatency += m.cycle - c.rem.issuedAt
	c.state = coreRunning
}

// serveRemote performs a remote memory op at the destination tile.
// Payload layout: addr in the high 32 bits, data in the low 32. The
// serving tile is either the address's owner or the host of the dead
// owner's remapped (shadow) window.
func (m *Machine) serveRemote(p noc.Packet) uint32 {
	addr := uint32(p.Payload >> 32)
	data := uint32(p.Payload)
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return 0xDEAD0000
	}
	if tile != p.Dst {
		host, ok := m.remap[m.grid.Index(tile)]
		if !ok || host != m.grid.Index(p.Dst) {
			return 0xDEAD0000
		}
	}
	b := m.globalSlice(tile, bank, off)
	if b == nil {
		return 0xDEAD0001
	}
	old := binary.LittleEndian.Uint32(b)
	switch p.Tag & 0b11 {
	case remStore:
		binary.LittleEndian.PutUint32(b, data)
	case remAmoAdd:
		binary.LittleEndian.PutUint32(b, old+data)
	case remAmoMin:
		if int32(data) < int32(old) {
			binary.LittleEndian.PutUint32(b, data)
		}
	}
	return old
}

// Step advances the machine one cycle.
func (m *Machine) Step() {
	m.cycle++
	m.applyScheduled()
	if m.LatencyModel == nil {
		m.net.Step()
		m.flushResponses()
		m.flushForwards()
	}
	if m.fullScan {
		m.stepCoresFullScan()
		return
	}
	if m.Shards > 1 && m.traceW == nil {
		m.stepCoresSharded()
		return
	}
	for _, t := range m.tiles {
		if t == nil || t.dead {
			continue
		}
		m.stepTile(t, nil)
	}
}

// Close releases the worker goroutines behind a sharded machine and its
// network simulator. It is a no-op for serial machines and idempotent;
// the machine remains usable (stepping re-creates the gangs on demand).
func (m *Machine) Close() {
	if m.msh != nil {
		m.msh.gang.Close()
		m.msh = nil
	}
	m.net.Close()
}

// sharding returns the shard engine for the current Shards/Workers
// settings, (re)building bands and gang when the knobs changed.
func (m *Machine) sharding() *machEngine {
	shards := m.Shards
	if shards > m.grid.H {
		shards = m.grid.H // at most one band per tile row
	}
	if shards < 1 {
		shards = 1
	}
	workers := parallel.Workers(m.Workers, shards)
	if me := m.msh; me != nil && me.shards == shards && me.workers == workers {
		return me
	}
	if m.msh != nil {
		m.msh.gang.Close()
	}
	me := &machEngine{
		shards:  shards,
		workers: workers,
		gang:    parallel.NewGang(workers),
		bands:   make([]machBand, shards),
	}
	for b := 0; b < shards; b++ {
		me.bands[b].lo = b * m.grid.H / shards * m.grid.W
		me.bands[b].hi = (b + 1) * m.grid.H / shards * m.grid.W
	}
	me.stepFn = func(b int) {
		sh := &me.bands[b]
		for ti := sh.lo; ti < sh.hi; ti++ {
			t := m.tiles[ti]
			if t == nil || t.dead {
				continue
			}
			m.stepTile(t, sh)
		}
	}
	m.msh = me
	return me
}

// stepCoresSharded is the parallel core loop. Phase 1 advances each
// band's core pipelines concurrently; in-cycle execution touches only
// core/tile-local state plus cycle-frozen machine state (address map,
// remap table, fault view, cycle counter), while every action against
// shared mutable state — packet injection, tag-sequence allocation,
// kernel re-planning, degradation accounting — is staged into the
// band's op list. Phase 2 folds the bands' private counters and replays
// the staged ops serially in band order, which concatenates to exactly
// the serial engine's (tile, rotated-core) order, so injection
// backpressure, tag values and degradation reports are bit-identical.
func (m *Machine) stepCoresSharded() {
	me := m.sharding()
	me.gang.Run(len(me.bands), me.stepFn)
	for b := range me.bands {
		sh := &me.bands[b]
		m.BankConflicts += sh.bankConflicts
		m.running += sh.runningDelta
		sh.bankConflicts, sh.runningDelta = 0, 0
		for i := range sh.ops {
			op := &sh.ops[i]
			switch op.kind {
			case stageIssue:
				m.remoteOp(op.c, op.in, op.addr)
			case stageRemoteStep:
				m.stepRemote(op.c)
			}
		}
		sh.ops = sh.ops[:0]
	}
}

// stepTile advances every runnable core of one tile. sh is nil on the
// serial path; when non-nil, shared-state actions are staged into it.
func (m *Machine) stepTile(t *Tile, sh *machBand) {
	if t.runDirty {
		t.compactRun()
	}
	if len(t.run) == 0 {
		return // quiescent tile: every core parked or faulted
	}
	// Rotate the stepping order so crossbar-bank arbitration is
	// fair: with fixed priority, spinning readers on a bank can
	// starve a later core's write indefinitely (barrier livelock).
	// The rotation is over the full core index space, so stepping
	// the runnable subsequence from the first index >= start visits
	// the same cores in the same order as the full scan.
	n := len(t.Cores)
	start := int(m.cycle) % n
	k := sort.SearchInts(t.run, start)
	for i, nr := 0, len(t.run); i < nr; i++ {
		j := k + i
		if j >= nr {
			j -= nr
		}
		m.stepCore(t, t.Cores[t.run[j]], sh)
	}
}

// stepCoresFullScan is the pre-optimization core loop: every core of
// every live tile is touched each cycle. Kept as the reference for the
// fast path's differential tests.
func (m *Machine) stepCoresFullScan() {
	for _, t := range m.tiles {
		if t == nil || t.dead {
			continue
		}
		n := len(t.Cores)
		start := int(m.cycle) % n
		for i := 0; i < n; i++ {
			m.stepCore(t, t.Cores[(start+i)%n], nil)
		}
	}
}

// flushResponses injects queued responses, retrying those that met
// backpressure. A response whose server tile has since died is dropped
// (the requester's deadline recovers it); one whose direct return path
// broke is re-planned through the kernel, possibly via relays.
func (m *Machine) flushResponses() {
	retry := m.pending[:0]
	for _, r := range m.pending {
		if m.fm.Faulty(r.src) {
			m.degr.DroppedResponses++
			continue
		}
		net, first := r.net, r.finalDst
		if !m.kernel.Analyzer().PathClear(net, r.src, r.finalDst) {
			dec, err := m.kernel.Decide(r.src, r.finalDst)
			if err != nil || !dec.Reachable {
				m.degr.DroppedResponses++
				continue
			}
			net = dec.Request
			if len(dec.Via) > 0 {
				first = dec.Via[0]
			}
		}
		payload := uint64(m.grid.Index(r.finalDst))<<32 | uint64(r.result)
		if _, err := m.net.Inject(net, r.src, first, noc.Response, r.tag, payload); err != nil {
			retry = append(retry, r)
		}
	}
	m.pending = retry
}

// flushForwards re-injects packets parked at relay tiles: requests
// toward the tile serving their address, responses toward the
// requesting tile encoded in the payload.
func (m *Machine) flushForwards() {
	retry := m.pendingFwd[:0]
	for _, f := range m.pendingFwd {
		if m.fm.Faulty(f.at) {
			m.degr.DroppedForwards++
			continue
		}
		var target geom.Coord
		if f.pkt.Kind == noc.Request {
			t, err := m.routeTarget(uint32(f.pkt.Payload >> 32))
			if err != nil {
				m.degr.DroppedForwards++
				continue
			}
			target = t
		} else {
			target = m.grid.Coord(int(f.pkt.Payload >> 32))
		}
		if target == f.at {
			// The window remapped onto this very tile while the packet
			// was in flight: deliver locally instead of forwarding.
			p := f.pkt
			p.Dst = f.at
			m.onDeliver(p)
			continue
		}
		dec, err := m.kernel.Decide(f.at, target)
		if err != nil || !dec.Reachable {
			m.degr.DroppedForwards++
			continue
		}
		next := target
		if len(dec.Via) > 0 {
			next = dec.Via[0]
		}
		if err := m.net.Forward(dec.Request, f.at, next, f.pkt); err != nil {
			retry = append(retry, f) // backpressure: park until next cycle
			continue
		}
		if f.pkt.Kind == noc.Request {
			m.degr.RelayedRequests++
		} else {
			m.degr.RelayedResponses++
		}
	}
	m.pendingFwd = retry
}

// Run steps until every started core halts or maxCycles pass.
func (m *Machine) Run(maxCycles int64) error {
	return m.RunCtx(context.Background(), maxCycles)
}

// RunCtx is Run with cancellation and optional cycle progress: every
// runProgressStride cycles the machine checks ctx (returning ctx.Err()
// with the machine paused at a cycle boundary — the state stays
// consistent and the run can even be resumed by calling Run again) and
// invokes Progress, if set, with the current cycle count. On every exit
// path — halt, budget expiry, cancellation — one final Progress call
// reports the terminal cycle count, so progress streams never end with
// a stale mid-interval value. The execution itself is bit-identical to
// Run for any ctx that is never cancelled.
func (m *Machine) RunCtx(ctx context.Context, maxCycles int64) error {
	if err := m.runToCycle(ctx, m.cycle+maxCycles); err != nil {
		return err
	}
	if m.AllHalted() {
		return nil
	}
	return &BudgetError{Cycles: maxCycles}
}

// RunToCycleCtx steps the machine until its cycle counter reaches
// target (or every started core halts first, or ctx is cancelled).
// Unlike RunCtx, reaching the target without quiescing is not an error
// — callers that need budget semantics check AllHalted afterwards. It
// is the warm-state forking workhorse: a Monte Carlo driver advances
// the shared prefix machine to each trial's fork cycle with it, and a
// forked trial runs to the absolute cycle budget with it, matching a
// from-scratch RunCtx step for step. A target at or before the current
// cycle is a no-op. Like RunCtx it emits a terminal Progress call.
func (m *Machine) RunToCycleCtx(ctx context.Context, target int64) error {
	return m.runToCycle(ctx, target)
}

// runToCycle is the shared run loop: step to the absolute target cycle,
// checking halt state every iteration and ctx/Progress at stride
// boundaries, with one final Progress tick on every exit path.
func (m *Machine) runToCycle(ctx context.Context, target int64) error {
	for i := int64(0); m.cycle < target && !m.AllHalted(); i++ {
		if i%runProgressStride == 0 && i > 0 {
			if m.Progress != nil {
				m.Progress(m.cycle)
			}
			// The stride call above already reported this cycle, so a
			// cancelled run's last Progress value is its pause cycle.
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		m.Step()
	}
	if m.Progress != nil {
		m.Progress(m.cycle)
	}
	return nil
}

// BudgetError reports a run that did not quiesce within its cycle
// budget — the never-hang bound expired with cores still running. The
// machine is left paused at a cycle boundary and remains usable.
type BudgetError struct {
	// Cycles is the budget that expired (RunCtx's maxCycles).
	Cycles int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: not halted after %d cycles", e.Cycles)
}

// runProgressStride is the cycle interval between RunCtx's ctx checks
// and Progress callbacks — coarse enough to stay off the hot path's
// profile, fine enough that cancellation lands within milliseconds.
const runProgressStride = 4096

// AllHalted reports whether every core is halted or faulted — an O(1)
// counter check (the full scan survives under the fullScan test flag).
func (m *Machine) AllHalted() bool {
	if !m.fullScan {
		return m.running == 0
	}
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for _, c := range t.Cores {
			if !c.Halted() {
				return false
			}
		}
	}
	return true
}

// Faults returns the errors of all faulted cores.
func (m *Machine) Faults() []error {
	var out []error
	for _, t := range m.tiles {
		if t == nil {
			continue
		}
		for _, c := range t.Cores {
			if c.state == coreFaulted {
				out = append(out, fmt.Errorf("tile %v core %d @pc=%#x: %w", t.Coord, c.idx, c.PC, c.Err))
			}
		}
	}
	return out
}

// AvgRemoteLatency returns mean remote access round-trip cycles.
func (m *Machine) AvgRemoteLatency() float64 {
	if m.RemoteRequests == 0 {
		return 0
	}
	return float64(m.RemoteLatency) / float64(m.RemoteRequests)
}

// fault stops a core with a structured error. sh is the band staging
// context when called from a parallel phase (nil on serial paths).
func (m *Machine) fault(c *Core, sh *machBand, format string, args ...any) {
	c.Err = fmt.Errorf(format, args...)
	c.state = coreFaulted
	m.coreStopped(c, sh)
}

// coreStopped books a running → halted/faulted transition: the machine
// counter backs O(1) AllHalted and the tile's runnable list is marked
// for compaction. Callers must only invoke it for cores that were not
// already stopped. During a sharded phase the counter update lands in
// the band's private delta (folded at commit); the runnable-list mark
// is tile-local and therefore band-local.
func (m *Machine) coreStopped(c *Core, sh *machBand) {
	if sh != nil {
		sh.runningDelta--
	} else {
		m.running--
	}
	if t := m.tiles[m.grid.Index(c.tile)]; t != nil {
		t.runDirty = true
	}
}

func (m *Machine) stepCore(t *Tile, c *Core, sh *machBand) {
	switch c.state {
	case coreHalted, coreFaulted:
		return
	case coreStalled:
		if m.cycle < c.stallUntil {
			c.StallFixed++
			return
		}
		if c.loadReg > 0 { // r0 is hardwired zero
			c.Regs[c.loadReg] = c.loadVal
		}
		c.loadReg = -1
		c.state = coreRunning
		return // the completing cycle does not also execute
	case coreRemote:
		// Injection retries and deadline handling touch the network and
		// the degradation report: staged when stepping in parallel.
		if sh != nil {
			sh.ops = append(sh.ops, stagedOp{kind: stageRemoteStep, c: c})
			return
		}
		m.stepRemote(c)
		return
	}
	m.execute(t, c, sh)
}

// stepRemote is the per-cycle step of a core awaiting a remote
// response: retry the injection if it met backpressure, and declare the
// op lost when its deadline expires. Runs serially (directly on the
// serial path, via the staged-op commit on the sharded path).
func (m *Machine) stepRemote(c *Core) {
	if m.LatencyModel != nil {
		m.stepRemoteModeled(c)
		return
	}
	c.StallRemote++
	if !c.rem.injected {
		if _, err := m.net.Inject(c.rem.net, c.tile, c.rem.dst, noc.Request, c.rem.tag, c.rem.payload); err == nil {
			c.rem.injected = true
		}
	}
	if m.RemoteTimeout > 0 && m.cycle >= c.rem.deadline {
		m.retryRemote(c)
	}
}

func (m *Machine) execute(t *Tile, c *Core, sh *machBand) {
	if int(c.PC)+4 > len(c.priv) {
		m.fault(c, sh, "pc outside private SRAM")
		return
	}
	in := Decode(binary.LittleEndian.Uint32(c.priv[c.PC:]))
	m.trace(c, in)
	next := c.PC + 4
	r := &c.Regs
	switch in.Op {
	case OpNop:
	case OpHalt:
		c.state = coreHalted
		m.coreStopped(c, sh)
		c.Instret++
		return
	case OpLI:
		r[in.Rd] = uint32(in.Imm)
	case OpLUI:
		r[in.Rd] = uint32(in.Imm) << 16
	case OpOrLo:
		r[in.Rd] |= uint32(in.Imm) & 0xFFFF
	case OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case OpShl:
		r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 31)
	case OpShr:
		r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 31)
	case OpSlt:
		r[in.Rd] = b2u(int32(r[in.Rs1]) < int32(r[in.Rs2]))
	case OpSltu:
		r[in.Rd] = b2u(r[in.Rs1] < r[in.Rs2])
	case OpAddi:
		r[in.Rd] = r[in.Rs1] + uint32(in.Imm)
	case OpBeq:
		if r[in.Rs1] == r[in.Rs2] {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBne:
		if r[in.Rs1] != r[in.Rs2] {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBlt:
		if int32(r[in.Rs1]) < int32(r[in.Rs2]) {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpBge:
		if int32(r[in.Rs1]) >= int32(r[in.Rs2]) {
			next = c.PC + 4 + uint32(in.Imm)*4
		}
	case OpJal:
		r[in.Rd] = c.PC + 4
		next = c.PC + 4 + uint32(in.Imm)*4
	case OpJr:
		next = r[in.Rs1]
	case OpCoreID:
		r[in.Rd] = m.globalID(c)
	case OpNCores:
		r[in.Rd] = uint32(m.Cfg.TotalCores())
	case OpLw, OpSw, OpAmoAdd, OpAmoMin:
		if !m.memOp(t, c, in, sh) {
			return // retry same instruction next cycle (bank conflict)
		}
		c.Instret++
		c.PC = next
		return
	default:
		m.fault(c, sh, "illegal opcode %d", int(in.Op))
		return
	}
	r[0] = 0 // r0 is hardwired zero
	c.Instret++
	c.PC = next
}

// memOp issues a memory instruction; it returns false when the access
// must retry next cycle (crossbar bank conflict).
func (m *Machine) memOp(t *Tile, c *Core, in Instr, sh *machBand) bool {
	var addr uint32
	if in.Op == OpAmoAdd || in.Op == OpAmoMin {
		addr = c.Regs[in.Rs1]
	} else {
		addr = c.Regs[in.Rs1] + uint32(in.Imm)
	}
	if addr%4 != 0 {
		m.fault(c, sh, "unaligned access %#x", addr)
		return true
	}
	switch m.amap.Region(addr) {
	case arch.RegionPrivate:
		switch in.Op {
		case OpLw:
			c.loadVal = binary.LittleEndian.Uint32(c.priv[addr:])
			c.loadReg = in.Rd
		case OpSw:
			binary.LittleEndian.PutUint32(c.priv[addr:], c.Regs[in.Rs2])
			c.loadReg = -1
		default:
			// Atomics on private memory are pointless but harmless.
			old := binary.LittleEndian.Uint32(c.priv[addr:])
			m.applyAmo(c.priv[addr:addr+4], in.Op, old, c.Regs[in.Rs2])
			c.loadVal = old
			c.loadReg = in.Rd
		}
		c.state = coreStalled
		c.stallUntil = m.cycle + latPrivate
		return true

	case arch.RegionLocalBank:
		bank := m.Cfg.GlobalBanksPerTile // the tile-local bank
		off := addr - arch.LocalBankBase
		return m.bankAccess(t, c, in, bank, off, latLocalBank, sh)

	case arch.RegionGlobal:
		tile, bank, off, err := m.amap.GlobalTarget(addr)
		if err != nil {
			m.fault(c, sh, "bad global address %#x: %v", addr, err)
			return true
		}
		if tile == c.tile {
			return m.bankAccess(t, c, in, bank, off, latOwnGlobal, sh)
		}
		if sh != nil {
			// Remote issue touches the tag sequence, the kernel and the
			// network: staged for the serial commit. The serial engine
			// also advances PC/Instret on this path regardless of the
			// issue outcome, so returning true here is exact.
			sh.ops = append(sh.ops, stagedOp{kind: stageIssue, c: c, in: in, addr: addr})
			return true
		}
		return m.remoteOp(c, in, addr)
	}
	m.fault(c, sh, "unmapped address %#x", addr)
	return true
}

// bankAccess models the intra-tile crossbar: each bank serves one
// access per cycle; a conflicting core retries next cycle.
func (m *Machine) bankAccess(t *Tile, c *Core, in Instr, bank int, off uint32, lat int64, sh *machBand) bool {
	if t.bankBusy[bank] == m.cycle {
		if sh != nil {
			sh.bankConflicts++
		} else {
			m.BankConflicts++
		}
		c.RetryCycles++
		return false
	}
	t.bankBusy[bank] = m.cycle
	b := t.banks[bank]
	old := bank32(b, off)
	switch in.Op {
	case OpLw:
		c.loadVal = old
		c.loadReg = in.Rd
	case OpSw:
		setBank32(b, off, c.Regs[in.Rs2])
		c.loadReg = -1
	default:
		m.applyAmo(b[off:off+4], in.Op, old, c.Regs[in.Rs2])
		c.loadVal = old
		c.loadReg = in.Rd
	}
	c.state = coreStalled
	c.stallUntil = m.cycle + lat
	return true
}

func (m *Machine) applyAmo(word []byte, op Op, old, operand uint32) {
	switch op {
	case OpAmoAdd:
		binary.LittleEndian.PutUint32(word, old+operand)
	case OpAmoMin:
		if int32(operand) < int32(old) {
			binary.LittleEndian.PutUint32(word, operand)
		}
	}
}

// remoteOp issues a request packet for a remote global access. The
// destination is resolved through the live fault view (it may be the
// shadow host of a dead owner) and the first hop may be a relay tile
// when the kernel plans a detour.
func (m *Machine) remoteOp(c *Core, in Instr, addr uint32) bool {
	target, err := m.routeTarget(addr)
	if err != nil {
		m.fault(c, nil, "remote access lost: %v", err)
		return true
	}
	if m.LatencyModel != nil {
		return m.remoteOpModeled(c, in, addr, target)
	}
	dec, err := m.kernel.Decide(c.tile, target)
	if err != nil || !dec.Reachable {
		m.degr.markDegradedOnce(target)
		m.fault(c, nil, "tile %v unreachable from %v", target, c.tile)
		return true
	}
	first := target
	if len(dec.Via) > 0 {
		// Multi-leg detour: send to the first relay; relay tiles spend
		// cycles forwarding (paper Section VI software workaround).
		first = dec.Via[0]
	}
	op := uint32(remLoad)
	reg := in.Rd
	data := uint32(0)
	switch in.Op {
	case OpSw:
		op = remStore
		reg = -1
		data = c.Regs[in.Rs2]
	case OpAmoAdd:
		op = remAmoAdd
		data = c.Regs[in.Rs2]
	case OpAmoMin:
		op = remAmoMin
		data = c.Regs[in.Rs2]
	}
	m.tagSeq++
	tag := op | uint32(c.idx)<<2 | m.tagSeq<<6
	c.rem.injected = false
	c.rem.net = dec.Request
	c.rem.dst = first
	c.rem.tag = tag
	c.rem.payload = uint64(addr)<<32 | uint64(data)
	c.rem.reg = reg
	c.rem.issuedAt = m.cycle
	c.rem.deadline = m.cycle + m.RemoteTimeout
	c.rem.attempts = 0
	c.state = coreRemote
	// Try to inject immediately.
	if _, err := m.net.Inject(dec.Request, c.tile, first, noc.Request, tag, c.rem.payload); err == nil {
		c.rem.injected = true
	}
	return true
}

// retryRemote handles an expired remote-op deadline: the request or its
// response was lost (dead router, broken link). The op is re-planned
// through the kernel against the current fault view and reissued with a
// fresh tag and an exponentially longer deadline; after RemoteRetries
// reissues the destination is marked degraded and the core faults with
// a structured error instead of stalling forever.
func (m *Machine) retryRemote(c *Core) {
	m.net.CountTimeout()
	m.degr.TimedOutOps++
	addr := uint32(c.rem.payload >> 32)
	if c.rem.attempts >= m.RemoteRetries {
		m.degr.ExhaustedOps++
		m.degr.markDegradedOnce(c.rem.dst)
		m.fault(c, nil, "remote access %#x gave up after %d attempts (last hop %v, cycle %d)",
			addr, c.rem.attempts+1, c.rem.dst, m.cycle)
		return
	}
	target, err := m.routeTarget(addr)
	if err != nil {
		m.degr.ExhaustedOps++
		m.fault(c, nil, "remote access lost: %v", err)
		return
	}
	dec, derr := m.kernel.Decide(c.tile, target)
	if derr != nil || !dec.Reachable {
		m.degr.ExhaustedOps++
		m.degr.markDegradedOnce(target)
		m.fault(c, nil, "tile %v unreachable from %v after re-plan (attempt %d)", target, c.tile, c.rem.attempts+1)
		return
	}
	first := target
	if len(dec.Via) > 0 {
		first = dec.Via[0]
	}
	c.rem.attempts++
	m.degr.RetriedOps++
	// Fresh sequence bits so a late response to the lost attempt is
	// ignored as stale; op and core bits are preserved. Retries are
	// at-least-once: if the lost half was the response, a store or
	// atomic may apply twice — acceptable for degraded-mode runs.
	m.tagSeq++
	c.rem.tag = c.rem.tag&0x3F | m.tagSeq<<6
	c.rem.net = dec.Request
	c.rem.dst = first
	c.rem.injected = false
	// Exponential backoff plus deterministic jitter in [0, base/2):
	// cores that lost traffic to the same dead router would otherwise
	// all re-expire on the same cycle and re-collide forever. The
	// jitter is hashed from the op's identity, not drawn from a shared
	// RNG, so runs stay bit-identical at any shard or worker count.
	base := m.RemoteTimeout << uint(c.rem.attempts)
	c.rem.deadline = m.cycle + base + backoffJitter(c.rem.tag, m.cycle, c.tile, c.idx, base/2)
	if _, err := m.net.Inject(dec.Request, c.tile, first, noc.Request, c.rem.tag, c.rem.payload); err == nil {
		c.rem.injected = true
	}
}

// backoffJitter maps a retried op's identity — reissue tag, current
// cycle, and the retrying core's tile and lane — to a jitter in
// [0, span) via a splitmix64 finalizer. Pure and seed-free: the same
// machine replayed (serially or sharded) retries on exactly the same
// cycles, preserving the engine's determinism contract, while distinct
// cores (or the same core on later attempts) spread apart.
func backoffJitter(tag uint32, cycle int64, tile geom.Coord, lane int, span int64) int64 {
	if span <= 0 {
		return 0
	}
	z := uint64(tag) ^ uint64(cycle)<<20 ^ uint64(uint32(tile.X))<<40 ^ uint64(uint32(tile.Y))<<52 ^ uint64(uint32(lane))<<8
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z % uint64(span))
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
