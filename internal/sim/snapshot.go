package sim

import "waferscale/internal/geom"

// Warm-state snapshot/fork for the cycle engine. A fork deep-copies
// every piece of mutable run state — core registers and private SRAM,
// shared memory banks and their busy cycles, the network simulator's
// FIFOs and in-flight packets, pending responses/forwards, remote ops
// with their deterministic retry/jitter state, the remap/shadow tables,
// degradation bookkeeping, the fault map, the kernel's memoized routing
// decisions, and the cycle counter — so stepping the fork is
// bit-identical to stepping the original, at any shard or worker count.
// Monte Carlo sweeps use this to run a shared fault-free prefix once
// and fork per trial at each trial's first injected-fault cycle.

// Snapshot is a frozen copy of a machine, taken between cycles. It is
// immutable: forks are copies of the captured state, and taking more
// forks later yields the same starting point. Fork is safe for
// concurrent use, so trial workers can fork from one snapshot in
// parallel.
type Snapshot struct {
	m *Machine
}

// Snapshot captures the machine's current state. It must be called
// between cycles (never from inside Step or a callback), like every
// other mutation of the machine. The snapshot is independent of the
// machine: stepping the machine afterwards does not disturb it.
func (m *Machine) Snapshot() *Snapshot { return &Snapshot{m: m.clone()} }

// Cycle returns the machine cycle the snapshot was taken at.
func (s *Snapshot) Cycle() int64 { return s.m.cycle }

// Fork materializes an independent machine from the snapshot. Safe for
// concurrent use: forking only reads the frozen state. Close each fork
// after use if it ran sharded.
func (s *Snapshot) Fork() *Machine { return s.m.clone() }

// Fork returns an independent deep copy of the machine, equivalent to
// m.Snapshot().Fork() without retaining the intermediate copy. It must
// be called between cycles; unlike Snapshot.Fork it is NOT safe to call
// concurrently with stepping m.
func (m *Machine) Fork() *Machine { return m.clone() }

// clone is the one copy routine behind Snapshot and Fork. Not copied,
// by design: the trace writer and filter (tracing forces the serial
// loop and captures the original's writer), the Progress callback
// (callers wire their own), and the lazily built shard engine (rebuilt
// on first step from the copied Shards/Workers knobs). The address map
// is shared — it is immutable after construction. The fault map is
// cloned exactly once and shared by the fork's machine, network and
// kernel layers, preserving the original's aliasing (KillTile marks the
// one map all three read).
func (m *Machine) clone() *Machine {
	fm := m.fm.Clone()
	n := &Machine{
		Cfg:            m.Cfg,
		grid:           m.grid,
		topoName:       m.topoName,
		fm:             fm,
		amap:           m.amap,
		kernel:         m.kernel.Fork(fm),
		net:            m.net.Fork(fm),
		tiles:          make([]*Tile, len(m.tiles)),
		cycle:          m.cycle,
		tagSeq:         m.tagSeq,
		LatencyModel:   m.LatencyModel, // models are immutable after build
		LatencyRate:    m.LatencyRate,
		RemoteTimeout:  m.RemoteTimeout,
		RemoteRetries:  m.RemoteRetries,
		schedEvents:    m.schedEvents, // read-only by contract (inject.Schedule)
		schedAt:        m.schedAt,
		remap:          make(map[int]int, len(m.remap)),
		shadow:         make(map[int][]byte, len(m.shadow)),
		RemoteRequests: m.RemoteRequests,
		RemoteLatency:  m.RemoteLatency,
		BankConflicts:  m.BankConflicts,
		running:        m.running,
		fullScan:       m.fullScan,
		Shards:         m.Shards,
		Workers:        m.Workers,
	}
	n.pending = append([]responseToSend(nil), m.pending...)
	n.pendingFwd = append([]forwardToSend(nil), m.pendingFwd...)
	for k, v := range m.remap {
		n.remap[k] = v
	}
	for k, v := range m.shadow {
		n.shadow[k] = append([]byte(nil), v...)
	}
	n.degr = m.degr
	n.degr.KilledTiles = append([]geom.Coord(nil), m.degr.KilledTiles...)
	n.degr.DegradedTiles = append([]geom.Coord(nil), m.degr.DegradedTiles...)
	for i, t := range m.tiles {
		if t == nil {
			continue
		}
		nt := &Tile{
			Coord:    t.Coord,
			Cores:    make([]*Core, len(t.Cores)),
			banks:    make([][]byte, len(t.banks)),
			bankBusy: append([]int64(nil), t.bankBusy...),
			dead:     t.dead,
			run:      append([]int(nil), t.run...),
			runDirty: t.runDirty,
		}
		for j, c := range t.Cores {
			nc := new(Core)
			*nc = *c // registers, pipeline state and the rem struct copy by value
			nc.priv = append([]byte(nil), c.priv...)
			nt.Cores[j] = nc
		}
		for b := range t.banks {
			nt.banks[b] = append([]byte(nil), t.banks[b]...)
		}
		n.tiles[i] = nt
	}
	n.net.OnDeliver = n.onDeliver
	return n
}
