package sim

import (
	"math/rand"
	"strings"
	"testing"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/noc"
)

// TestMatVecOnMachine: y = A*x computed by WS-ISA workers matches the
// host reference.
func TestMatVecOnMachine(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	a, x := RandomMatrix(20, 3)
	y, res, err := RunMatVec(m, a, x, AllWorkers(m, 10), 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceMatVec(a, x)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %d, want %d", i, y[i], want[i])
		}
	}
	if res.Cycles <= 0 || res.Instructions <= 0 {
		t.Errorf("stats = %+v", res)
	}
}

// TestMatVecNegativeValues: signed arithmetic through mul/add.
func TestMatVecNegativeValues(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	a := [][]int32{{-1, 2}, {3, -4}}
	x := []int32{-5, 6}
	y, _, err := RunMatVec(m, a, x, AllWorkers(m, 2), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 17 || y[1] != -39 {
		t.Errorf("y = %v, want [17 -39]", y)
	}
}

func TestMatVecValidation(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	if _, _, err := RunMatVec(m, nil, nil, AllWorkers(m, 1), 1000); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := RunMatVec(m, [][]int32{{1, 2}}, []int32{1, 2}, AllWorkers(m, 1), 1000); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := RunMatVec(m, [][]int32{{1}}, []int32{1}, nil, 1000); err == nil {
		t.Error("no workers accepted")
	}
}

// TestHistogramOnMachine: shared-bin counting with amoadd contention
// must be exact — the atomics-under-contention stress test.
func TestHistogramOnMachine(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	rng := rand.New(rand.NewSource(9))
	data := make([]int32, 600)
	const nBins = 8
	for i := range data {
		data[i] = int32(rng.Intn(nBins))
	}
	bins, res, err := RunHistogram(m, data, nBins, AllWorkers(m, 16), 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceHistogram(data, nBins)
	total := int32(0)
	for b := range want {
		if bins[b] != want[b] {
			t.Errorf("bin %d = %d, want %d", b, bins[b], want[b])
		}
		total += bins[b]
	}
	if total != int32(len(data)) {
		t.Errorf("bin total = %d, want %d (lost updates!)", total, len(data))
	}
	if res.RemoteOps == 0 {
		t.Error("histogram should generate remote atomics")
	}
}

func TestHistogramValidation(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	if _, _, err := RunHistogram(m, []int32{5}, 4, AllWorkers(m, 1), 1000); err == nil {
		t.Error("out-of-range bin accepted")
	}
	if _, _, err := RunHistogram(m, []int32{1}, 0, AllWorkers(m, 1), 1000); err == nil {
		t.Error("zero bins accepted")
	}
	if _, _, err := RunHistogram(m, []int32{1}, 4, nil, 1000); err == nil {
		t.Error("no workers accepted")
	}
}

// TestHistogramWithFaultyTile: atomics-heavy traffic still exact when
// routing around a dead tile.
func TestHistogramWithFaultyTile(t *testing.T) {
	cfg := smallConfig()
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(1, 2))
	m := newMachine(t, cfg, fm)
	data := make([]int32, 200)
	for i := range data {
		data[i] = int32(i % 5)
	}
	bins, _, err := RunHistogram(m, data, 5, AllWorkers(m, 8), 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for b, v := range bins {
		if v != 40 {
			t.Errorf("bin %d = %d, want 40", b, v)
		}
	}
}

// TestMatVecScalesWithWorkers: more workers, fewer cycles.
func TestMatVecScalesWithWorkers(t *testing.T) {
	a, x := RandomMatrix(24, 5)
	run := func(w int) int64 {
		m := newMachine(t, smallConfig(), nil)
		_, res, err := RunMatVec(m, a, x, AllWorkers(m, w), 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if one, twelve := run(1), run(12); twelve >= one {
		t.Errorf("12 workers (%d cycles) not faster than 1 (%d)", twelve, one)
	}
}

func TestSpreadWorkersPlacement(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	ws := SpreadWorkers(m, 16)
	if len(ws) != 16 {
		t.Fatalf("workers = %d", len(ws))
	}
	// First 16 workers on a 16-tile machine: one per tile, all core 0.
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Core != 0 {
			t.Errorf("worker %v should be core 0 in the first round", w)
		}
		key := w.Tile.String()
		if seen[key] {
			t.Errorf("tile %v assigned twice in the first round", w.Tile)
		}
		seen[key] = true
	}
	// Requesting more than one round wraps to core 1.
	ws = SpreadWorkers(m, 20)
	if len(ws) != 20 || ws[16].Core != 1 {
		t.Errorf("second round = %+v", ws[16])
	}
	// Capped by total cores.
	if got := len(SpreadWorkers(m, 9999)); got != 64 {
		t.Errorf("uncappable request returned %d", got)
	}
}

// TestSpreadVsPackedRemoteTraffic: spread placement generates remote
// traffic where packed placement on the data tile does not.
func TestSpreadVsPackedRemoteTraffic(t *testing.T) {
	g := GridGraph(5, 5)
	run := func(pick func(*Machine, int) []WorkerRef) int64 {
		cfg := smallConfig()
		cfg.CoresPerTile = 14
		m := newMachine(t, cfg, nil)
		if _, err := RunBFS(m, g, 0, pick(m, 10), 20_000_000); err != nil {
			t.Fatal(err)
		}
		return m.RemoteRequests
	}
	packed := run(AllWorkers) // 10 cores, all on tile (0,0) with the data
	spread := run(SpreadWorkers)
	if packed != 0 {
		t.Errorf("packed placement produced %d remote ops; data is local", packed)
	}
	if spread == 0 {
		t.Error("spread placement produced no remote traffic")
	}
}

// newTopoMachine builds a fault-free machine on the named topology.
func newTopoMachine(t *testing.T, cfg arch.Config, topo string) *Machine {
	t.Helper()
	m, err := NewMachineTopology(cfg, fault.NewMap(cfg.Grid()), topo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMatVecAllTopologies pins the matvec kernel's results to the host
// reference on every NoC topology. Workers are spread one-per-tile so
// the traffic actually crosses the interconnect under test.
func TestMatVecAllTopologies(t *testing.T) {
	a, x := RandomMatrix(20, 3)
	want := ReferenceMatVec(a, x)
	for _, topo := range noc.TopologyNames() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			m := newTopoMachine(t, smallConfig(), topo)
			if m.TopologyName() != topo {
				t.Errorf("TopologyName = %q, want %q", m.TopologyName(), topo)
			}
			y, res, err := RunMatVec(m, a, x, SpreadWorkers(m, 10), 20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if y[i] != want[i] {
					t.Fatalf("y[%d] = %d, want %d", i, y[i], want[i])
				}
			}
			if res.RemoteOps == 0 {
				t.Error("spread workers produced no remote traffic")
			}
		})
	}
}

// TestHistogramAllTopologies: shared-bin amoadd contention stays exact
// on every topology — atomics must not lose updates regardless of how
// the packets are routed.
func TestHistogramAllTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := make([]int32, 400)
	const nBins = 8
	for i := range data {
		data[i] = int32(rng.Intn(nBins))
	}
	want := ReferenceHistogram(data, nBins)
	for _, topo := range noc.TopologyNames() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			m := newTopoMachine(t, smallConfig(), topo)
			bins, res, err := RunHistogram(m, data, nBins, SpreadWorkers(m, 12), 20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for b := range want {
				if bins[b] != want[b] {
					t.Errorf("bin %d = %d, want %d", b, bins[b], want[b])
				}
			}
			if res.RemoteOps == 0 {
				t.Error("histogram should generate remote atomics")
			}
		})
	}
}

// TestRelayDetourNonMeshTopologies pins the documented relay-planner
// gap (see DegradationReport.Topology): the planner reasons in mesh
// row/column terms on every topology. On cmesh and express — link
// supersets of the mesh — the mesh-shaped detour around a
// double-blocked path is correct (just not necessarily minimal), and
// the access completes through relays. On vertical, whose fold
// replaces the cross-layer mesh links, the mesh-planned detour can be
// unroutable; the machine must then fail closed — exhaust retries,
// fault the core with a structured error, and still quiesce — rather
// than hang. Every topology must name itself in the report.
func TestRelayDetourNonMeshTopologies(t *testing.T) {
	for _, topo := range noc.TopologyNames() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			// 4x4 (vertical needs an even row count); faults at (1,0)
			// and (0,3) block both DoR paths between (0,0) and (3,3)
			// in both directions, so only a relay detour connects them.
			cfg := smallConfig()
			fm := fault.NewMap(cfg.Grid())
			fm.MarkFaulty(geom.C(1, 0))
			fm.MarkFaulty(geom.C(0, 3))
			m, err := NewMachineTopology(cfg, fm, topo)
			if err != nil {
				t.Fatal(err)
			}
			addr := globalWindowAddr(cfg, geom.C(3, 3))
			if err := m.WriteGlobal32(addr, 77); err != nil {
				t.Fatal(err)
			}
			c := startRemoteLoad(t, m, geom.C(0, 0), addr)
			if err := m.Run(20_000); err != nil {
				t.Fatalf("machine did not quiesce: %v", err)
			}
			rep := m.Degradation()
			if rep.Topology != topo {
				t.Errorf("report topology = %q, want %q", rep.Topology, topo)
			}
			if topo == noc.TopoVertical {
				// The fold breaks the mesh-planned detour: the op must
				// fail closed with a structured per-core error.
				faults := m.Faults()
				if len(faults) != 1 || !strings.Contains(faults[0].Error(), "gave up") {
					t.Fatalf("faults = %v, want one 'gave up' error", faults)
				}
				if rep.ExhaustedOps == 0 {
					t.Errorf("expected exhausted ops: %+v", rep)
				}
				return
			}
			if faults := m.Faults(); len(faults) > 0 {
				t.Fatalf("faults: %v", faults)
			}
			if c.Regs[2] != 77 {
				t.Errorf("loaded %d, want 77", c.Regs[2])
			}
			if rep.RelayedRequests == 0 || rep.RelayedResponses == 0 {
				t.Errorf("mesh-planned detour did not relay: %+v", rep)
			}
		})
	}
}
