package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/inject"
)

// The tests in this file pin warm-state forking to the from-scratch
// engine: a machine forked at any cycle — zero, the pre-fault boundary,
// or deep inside a degraded run — and stepped to the end must be
// bit-identical to a machine stepped from cycle 0, on every observable
// diffMachinesDeep covers, at any shard/worker combination on either
// side of the fork.

// chaosSchedule is the standard dirty-run schedule shared with the
// sharded differential: a worker tile killed mid-run, a link flap and a
// bit error, so the fork must carry remap/shadow state, degradation
// accounting, retry bookkeeping and mid-stream schedule position.
func chaosSchedule() *inject.Schedule {
	return inject.NewSchedule().
		KillTileAt(2000, geom.C(1, 0)).
		FlapLink(geom.C(3, 3), geom.East, 1000, 1500).
		BitErrorAt(1200, geom.C(2, 2), 0xFF)
}

// runChaosReference runs the schedule from scratch (the trusted path).
func runChaosReference(t *testing.T, g *Graph, budget int64) (*ChaosResult, *Machine) {
	t.Helper()
	m := chaosBFSMachine(t)
	if err := m.AttachSchedule(chaosSchedule()); err != nil {
		t.Fatal(err)
	}
	res, err := RunSSSPUnderFaults(m, g, 0, SpreadWorkers(m, 16), budget)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	return res, m
}

// runChaosForked runs the same workload but forks at forkAt: the prefix
// machine (prefixShards wide) is advanced to the fork cycle, forked,
// closed, and the fork (shards/workers wide) finishes the run. When
// attachEarly is set the schedule rides on the prefix — the post-fault
// fork case — otherwise it is attached to the fork, the Monte Carlo
// driver's shape.
func runChaosForked(t *testing.T, g *Graph, budget, forkAt int64, attachEarly bool, prefixShards, shards, workers int) (*ChaosResult, *Machine) {
	t.Helper()
	m0 := chaosBFSMachine(t)
	m0.Shards = prefixShards
	if attachEarly {
		if err := m0.AttachSchedule(chaosSchedule()); err != nil {
			t.Fatal(err)
		}
	}
	distA, err := PrepareSSSP(m0, g, 0, SpreadWorkers(m0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := m0.RunToCycleCtx(context.Background(), forkAt); err != nil {
		t.Fatal(err)
	}
	f := m0.Fork()
	m0.Close()
	f.Shards = shards
	f.Workers = workers
	if !attachEarly {
		if err := f.AttachSchedule(chaosSchedule()); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.RunToCycleCtx(context.Background(), budget); err != nil {
		t.Fatal(err)
	}
	var runErr error
	if !f.AllHalted() {
		runErr = &BudgetError{Cycles: budget}
	}
	res := CollectSSSP(f, g, distA, runErr)
	f.Close()
	return res, f
}

func diffChaosResults(t *testing.T, label string, got, ref *ChaosResult) {
	t.Helper()
	if got.Completed != ref.Completed {
		t.Fatalf("%s: Completed %v, ref %v", label, got.Completed, ref.Completed)
	}
	if got.Cycles != ref.Cycles {
		t.Errorf("%s: Cycles %d, ref %d", label, got.Cycles, ref.Cycles)
	}
	if got.ReadErrors != ref.ReadErrors {
		t.Errorf("%s: ReadErrors %d, ref %d", label, got.ReadErrors, ref.ReadErrors)
	}
	if (got.RunErr == nil) != (ref.RunErr == nil) {
		t.Errorf("%s: RunErr %v, ref %v", label, got.RunErr, ref.RunErr)
	}
	for v := range ref.Dist {
		if got.Dist[v] != ref.Dist[v] {
			t.Fatalf("%s: dist[%d] = %d, ref %d", label, v, got.Dist[v], ref.Dist[v])
		}
	}
	gr, rr := got.Report, ref.Report
	if len(gr.KilledTiles) != len(rr.KilledTiles) ||
		len(gr.DegradedTiles) != len(rr.DegradedTiles) ||
		gr.RemappedWindows != rr.RemappedWindows ||
		gr.LostSharedBytes != rr.LostSharedBytes ||
		gr.RelayedRequests != rr.RelayedRequests ||
		gr.RelayedResponses != rr.RelayedResponses ||
		gr.RetriedOps != rr.RetriedOps ||
		gr.TimedOutOps != rr.TimedOutOps ||
		gr.ExhaustedOps != rr.ExhaustedOps ||
		gr.DroppedResponses != rr.DroppedResponses ||
		gr.DroppedForwards != rr.DroppedForwards ||
		gr.LinkFlaps != rr.LinkFlaps ||
		gr.BitErrors != rr.BitErrors {
		t.Errorf("%s: degradation reports diverge:\nforked %+v\nref    %+v", label, gr, rr)
	}
}

// TestMachineForkDifferentialChaos forks the dirty run at cycle 0, at
// the last cycle before the first event fires, and — with the schedule
// already mid-stream — after every event has landed, and demands
// bit-identity with from-scratch execution.
func TestMachineForkDifferentialChaos(t *testing.T) {
	const budget = 60_000
	g := GridGraph(8, 8).Unweighted()
	refRes, ref := runChaosReference(t, g, budget)

	cases := []struct {
		name        string
		forkAt      int64
		attachEarly bool
	}{
		{"cycle0", 0, false},
		{"preFaultBoundary", 999, false}, // first event fires at cycle 1000
		{"postAllFaults", 2500, true},    // kill at 2000 already landed
	}
	for _, tc := range cases {
		res, f := runChaosForked(t, g, budget, tc.forkAt, tc.attachEarly, 1, 1, 0)
		diffChaosResults(t, tc.name, res, refRes)
		diffMachinesDeep(t, f, ref)
	}
}

// TestMachineForkShardComposition crosses fork with the sharded cycle
// engine: serial prefix into sharded forks, and a sharded prefix into a
// serial fork, all pinned to the serial from-scratch reference.
func TestMachineForkShardComposition(t *testing.T) {
	const budget = 60_000
	g := GridGraph(8, 8).Unweighted()
	refRes, ref := runChaosReference(t, g, budget)

	for _, sw := range [][3]int{{1, 2, 0}, {1, 4, 3}, {4, 1, 0}, {2, 4, 1}} {
		prefixShards, shards, workers := sw[0], sw[1], sw[2]
		res, f := runChaosForked(t, g, budget, 999, false, prefixShards, shards, workers)
		label := fmt.Sprintf("prefixShards=%d shards=%d workers=%d", prefixShards, shards, workers)
		diffChaosResults(t, label, res, refRes)
		diffMachinesDeep(t, f, ref)
	}
}

// TestSnapshotConcurrentForks takes one snapshot of a warm prefix and
// forks it from several goroutines at once, each fork finishing a
// different fault schedule. Every trial must match its own from-scratch
// reference, and the snapshot must stay reusable afterwards (forking is
// read-only). Run under -race this is the concurrency half of the
// Snapshot contract.
func TestSnapshotConcurrentForks(t *testing.T) {
	const budget = 40_000
	g := GridGraph(8, 8).Unweighted()

	scheds := make([]*inject.Schedule, 4)
	for i := range scheds {
		grid := geom.NewGrid(8, 8)
		scheds[i] = inject.Random(grid, 2, [2]int64{1500, 4000}, fault.TrialSeed(7, 2, i), nil)
	}

	// From-scratch references, one per schedule.
	refs := make([]*ChaosResult, len(scheds))
	for i, sched := range scheds {
		m := chaosBFSMachine(t)
		if err := m.AttachSchedule(sched); err != nil {
			t.Fatal(err)
		}
		res, err := RunSSSPUnderFaults(m, g, 0, SpreadWorkers(m, 16), budget)
		if err != nil {
			t.Fatal(err)
		}
		m.Close()
		refs[i] = res
	}

	// One warm prefix to cycle 1400 (before any schedule's first event),
	// snapshotted once.
	m0 := chaosBFSMachine(t)
	distA, err := PrepareSSSP(m0, g, 0, SpreadWorkers(m0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := m0.RunToCycleCtx(context.Background(), 1400); err != nil {
		t.Fatal(err)
	}
	snap := m0.Snapshot()
	m0.Close()
	if snap.Cycle() != 1400 {
		t.Fatalf("snapshot cycle = %d, want 1400", snap.Cycle())
	}

	results := make([]*ChaosResult, len(scheds))
	var wg sync.WaitGroup
	for i := range scheds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := snap.Fork()
			defer f.Close()
			if err := f.AttachSchedule(scheds[i]); err != nil {
				t.Error(err)
				return
			}
			if err := f.RunToCycleCtx(context.Background(), budget); err != nil {
				t.Error(err)
				return
			}
			var runErr error
			if !f.AllHalted() {
				runErr = &BudgetError{Cycles: budget}
			}
			results[i] = CollectSSSP(f, g, distA, runErr)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i] == nil {
			t.Fatalf("trial %d produced no result", i)
		}
		diffChaosResults(t, fmt.Sprintf("trial %d", i), results[i], refs[i])
	}

	// The snapshot is still intact: a late fork replays trial 0 exactly.
	f := snap.Fork()
	defer f.Close()
	if err := f.AttachSchedule(scheds[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.RunToCycleCtx(context.Background(), budget); err != nil {
		t.Fatal(err)
	}
	var runErr error
	if !f.AllHalted() {
		runErr = &BudgetError{Cycles: budget}
	}
	diffChaosResults(t, "late fork", CollectSSSP(f, g, distA, runErr), refs[0])
}

// TestForkIndependence: stepping the original after a fork must not
// disturb the fork, and vice versa.
func TestForkIndependence(t *testing.T) {
	g := GridGraph(6, 6).Unweighted()
	m := chaosBFSMachine(t)
	defer m.Close()
	if _, err := PrepareSSSP(m, g, 0, SpreadWorkers(m, 8)); err != nil {
		t.Fatal(err)
	}
	if err := m.RunToCycleCtx(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	f := m.Fork()
	defer f.Close()
	if err := m.RunToCycleCtx(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	if f.Cycle() != 500 {
		t.Fatalf("fork cycle moved to %d while original stepped", f.Cycle())
	}
	if err := f.RunToCycleCtx(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	diffMachinesDeep(t, f, m)
}
