package sim

import (
	"bytes"
	"strings"
	"testing"

	"waferscale/internal/geom"
)

func TestProfileAfterWorkload(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	g := GridGraph(5, 5)
	if _, err := RunBFS(m, g, 0, AllWorkers(m, 6), 5_000_000); err != nil {
		t.Fatal(err)
	}
	p := m.CollectProfile()
	if p.ActiveCores != 6 {
		t.Errorf("active cores = %d, want 6", p.ActiveCores)
	}
	if p.Instructions == 0 || p.Cycles == 0 {
		t.Fatalf("profile empty: %+v", p)
	}
	if p.CPI() <= 1 {
		t.Errorf("CPI = %.2f; remote stalls must push it above 1", p.CPI())
	}
	if p.StallRemote == 0 {
		t.Error("graph workload must stall on remote memory")
	}
	if f := p.RemoteStallFrac(); f <= 0 || f >= 1 {
		t.Errorf("remote stall fraction = %.2f", f)
	}
	// Cycle accounting: instructions + stalls cannot exceed total core
	// cycles.
	budget := p.Cycles * int64(p.ActiveCores)
	if used := p.Instructions + p.StallFixed + p.StallRemote + p.RetryCycles; used > budget {
		t.Errorf("accounted cycles %d exceed budget %d", used, budget)
	}
}

func TestProfileEmptyMachine(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	p := m.CollectProfile()
	if p.ActiveCores != 0 || p.CPI() != 0 || p.RemoteStallFrac() != 0 {
		t.Errorf("idle profile = %+v", p)
	}
}

func TestWriteProfile(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	prog := mustAssemble(t, `
		la  r1, 0x80000000
		lw  r2, 0(r1)
		lw  r3, 4(r1)
		halt
	`)
	if err := m.LoadProgram(geom.C(3, 3), 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.WriteProfile(&buf, 5)
	out := buf.String()
	for _, want := range []string{"machine profile", "CPI", "remote stalls", "tile(3,3).core0"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

// TestProfileLocalVsRemote: a local-only program has zero remote
// stalls; the same loop over remote memory is dominated by them.
func TestProfileLocalVsRemote(t *testing.T) {
	run := func(addr string) Profile {
		m := newMachine(t, smallConfig(), nil)
		prog := mustAssemble(t, `
			la  r1, `+addr+`
			li  r2, 0
			li  r3, 50
		loop:
			lw  r4, 0(r1)
			addi r2, r2, 1
			blt r2, r3, loop
			halt
		`)
		if err := m.LoadProgram(geom.C(3, 3), 0, prog); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		return m.CollectProfile()
	}
	local := run("0x8000")      // private SRAM
	remote := run("0x80000000") // tile (0,0)'s window, far away
	if local.StallRemote != 0 {
		t.Errorf("private loop has %d remote stalls", local.StallRemote)
	}
	if remote.StallRemote == 0 {
		t.Error("remote loop has no remote stalls")
	}
	if remote.CPI() < 3*local.CPI() {
		t.Errorf("remote CPI %.2f should dwarf local %.2f", remote.CPI(), local.CPI())
	}
}
