package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates WS-ISA assembly into machine words. The syntax is
// line-oriented:
//
//	; comment
//	label:
//	    li   r1, 42
//	    lui  r2, 0x8000        ; upper immediate
//	    add  r3, r1, r2
//	    lw   r4, 8(r3)
//	    sw   r4, 0(r3)
//	    beq  r1, r2, label     ; branches take label or numeric offset
//	    amoadd r5, r1, (r3)    ; r5 = old mem[r3]; mem[r3] += r1
//	    halt
//
// Labels resolve to PC-relative word offsets for branches and jal.
// Constants accept decimal, hex (0x...), and character forms. The
// pseudo-instruction `la rd, imm32` expands to lui+addi-style pairs.
func Assemble(src string) ([]uint32, error) {
	type pending struct {
		line  int
		instr Instr
		label string // branch target to resolve
		pc    int    // word index of the instruction
	}
	var prog []pending
	labels := map[string]int{}

	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by code on the same line.
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				name := line[:i]
				if _, dup := labels[name]; dup {
					return nil, fmt.Errorf("asm line %d: duplicate label %q", lineNo, name)
				}
				labels[name] = len(prog)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		mn := strings.ToLower(fields[0])
		args := fields[1:]

		// Pseudo-instruction: la rd, imm32 -> lui + ori-style addi.
		if mn == "la" {
			if len(args) != 2 {
				return nil, fmt.Errorf("asm line %d: la needs rd, imm", lineNo)
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, fmt.Errorf("asm line %d: %v", lineNo, err)
			}
			v, err := parseImm(args[1])
			if err != nil {
				return nil, fmt.Errorf("asm line %d: %v", lineNo, err)
			}
			u := uint32(v)
			hi := u >> 16
			lo := u & 0xFFFF
			// la rd, imm32 expands to lui (upper half) + orlo (lower).
			prog = append(prog, pending{line: lineNo, pc: len(prog), instr: Instr{Op: OpLUI, Rd: rd, Imm: int32(hi)}})
			if lo != 0 {
				prog = append(prog, pending{line: lineNo, pc: len(prog), instr: Instr{Op: OpOrLo, Rd: rd, Imm: int32(lo)}})
			}
			continue
		}

		op, spec, err := lookupOp(mn)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: %v", lineNo, err)
		}
		p := pending{line: lineNo, pc: len(prog), instr: Instr{Op: op}}
		if err := parseArgs(&p.instr, &p.label, spec, args); err != nil {
			return nil, fmt.Errorf("asm line %d (%s): %v", lineNo, mn, err)
		}
		prog = append(prog, p)
	}

	words := make([]uint32, len(prog))
	for i, p := range prog {
		if p.label != "" {
			target, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("asm line %d: undefined label %q", p.line, p.label)
			}
			off := target - (p.pc + 1)
			if off < -2048 || off > 2047 {
				return nil, fmt.Errorf("asm line %d: branch to %q out of range (%d words)", p.line, p.label, off)
			}
			p.instr.Imm = int32(off)
		}
		words[i] = p.instr.Encode()
	}
	return words, nil
}

// argSpec describes an instruction's operand shape.
type argSpec int

const (
	argsNone   argSpec = iota // halt, nop
	argsRI                    // li/lui rd, imm16
	argsRRR                   // add rd, rs1, rs2
	argsRRI                   // addi rd, rs1, imm
	argsMem                   // lw rd, off(rs1) / sw rs2, off(rs1)
	argsBranch                // beq rs1, rs2, label
	argsJal                   // jal rd, label
	argsR                     // jr rs1 / coreid rd / ncores rd
	argsAmo                   // amoadd rd, rs2, (rs1)
)

func lookupOp(mn string) (Op, argSpec, error) {
	switch mn {
	case "nop":
		return OpNop, argsNone, nil
	case "halt":
		return OpHalt, argsNone, nil
	case "li":
		return OpLI, argsRI, nil
	case "lui":
		return OpLUI, argsRI, nil
	case "add":
		return OpAdd, argsRRR, nil
	case "sub":
		return OpSub, argsRRR, nil
	case "mul":
		return OpMul, argsRRR, nil
	case "and":
		return OpAnd, argsRRR, nil
	case "or":
		return OpOr, argsRRR, nil
	case "xor":
		return OpXor, argsRRR, nil
	case "shl":
		return OpShl, argsRRR, nil
	case "shr":
		return OpShr, argsRRR, nil
	case "slt":
		return OpSlt, argsRRR, nil
	case "sltu":
		return OpSltu, argsRRR, nil
	case "addi":
		return OpAddi, argsRRI, nil
	case "lw":
		return OpLw, argsMem, nil
	case "sw":
		return OpSw, argsMem, nil
	case "beq":
		return OpBeq, argsBranch, nil
	case "bne":
		return OpBne, argsBranch, nil
	case "blt":
		return OpBlt, argsBranch, nil
	case "bge":
		return OpBge, argsBranch, nil
	case "jal":
		return OpJal, argsJal, nil
	case "jr":
		return OpJr, argsR, nil
	case "amoadd":
		return OpAmoAdd, argsAmo, nil
	case "amomin":
		return OpAmoMin, argsAmo, nil
	case "coreid":
		return OpCoreID, argsR, nil
	case "ncores":
		return OpNCores, argsR, nil
	case "orlo":
		return OpOrLo, argsRI, nil
	}
	return 0, 0, fmt.Errorf("unknown mnemonic %q", mn)
}

func parseArgs(in *Instr, label *string, spec argSpec, args []string) error {
	need := map[argSpec]int{
		argsNone: 0, argsRI: 2, argsRRR: 3, argsRRI: 3,
		argsMem: 2, argsBranch: 3, argsJal: 2, argsR: 1, argsAmo: 3,
	}[spec]
	if len(args) != need {
		return fmt.Errorf("want %d operands, got %d", need, len(args))
	}
	var err error
	switch spec {
	case argsNone:
	case argsRI:
		if in.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		if v < -32768 || v > 65535 {
			return fmt.Errorf("immediate %d out of 16-bit range", v)
		}
		in.Imm = int32(v)
	case argsRRR:
		if in.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return err
		}
		if in.Rs2, err = parseReg(args[2]); err != nil {
			return err
		}
	case argsRRI:
		if in.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return err
		}
		v, err := parseImm(args[2])
		if err != nil {
			return err
		}
		if v < -2048 || v > 2047 {
			return fmt.Errorf("immediate %d out of 12-bit range", v)
		}
		in.Imm = int32(v)
	case argsMem:
		// lw rd, off(rs1)  |  sw rs2, off(rs1)
		reg, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		if in.Op == OpLw {
			in.Rd = reg
		} else {
			in.Rs2 = reg
		}
		in.Rs1 = base
		in.Imm = off
	case argsBranch:
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return err
		}
		if in.Rs2, err = parseReg(args[1]); err != nil {
			return err
		}
		if v, err := parseImm(args[2]); err == nil {
			in.Imm = int32(v)
		} else {
			*label = args[2]
		}
	case argsJal:
		if in.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if v, err := parseImm(args[1]); err == nil {
			in.Imm = int32(v)
		} else {
			*label = args[1]
		}
	case argsR:
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if in.Op == OpJr {
			in.Rs1 = r
		} else {
			in.Rd = r
		}
	case argsAmo:
		// amoadd rd, rs2, (rs1)
		if in.Rd, err = parseReg(args[0]); err != nil {
			return err
		}
		if in.Rs2, err = parseReg(args[1]); err != nil {
			return err
		}
		addr := strings.TrimSuffix(strings.TrimPrefix(args[2], "("), ")")
		if in.Rs1, err = parseReg(addr); err != nil {
			return err
		}
	}
	return nil
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q (r0-r15)", s)
	}
	return n, nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}

// parseMemOperand splits "off(rN)".
func parseMemOperand(s string) (off int32, base int, err error) {
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q, want off(rN)", s)
	}
	offStr := s[:i]
	if offStr == "" {
		offStr = "0"
	}
	v, err := parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	if v < -2048 || v > 2047 {
		return 0, 0, fmt.Errorf("offset %d out of 12-bit range", v)
	}
	base, err = parseReg(s[i+1 : len(s)-1])
	return int32(v), base, err
}
