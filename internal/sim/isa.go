// Package sim is the functional stand-in for the paper's FPGA
// emulation (Section II): a cycle-counted simulator of the waferscale
// processor's software-visible architecture — tiles of 14 simple
// in-order cores with 64 KiB private SRAM each, a memory chiplet of
// five 128 KiB banks per tile, an intra-tile crossbar with per-bank
// contention, and the unified global shared memory carried over the
// dual-DoR waferscale network (internal/noc).
//
// The cores execute WS-ISA, a small 32-bit load/store ISA (the ARM
// Cortex-M3 of the prototype is replaced per the reproduction's
// substitution rule; the architectural claims being validated — unified
// shared memory, remote-access latency, network behaviour under load —
// do not depend on the core's instruction set). The package includes an
// assembler so the graph workloads the paper ran (BFS, SSSP) are
// written as actual WS-ISA programs.
package sim

import "fmt"

// Op is a WS-ISA opcode.
type Op uint8

// The WS-ISA instruction set. Encoding (32 bits):
//
//	[31:24] opcode  [23:20] rd  [19:16] rs1  [15:12] rs2  [11:0] imm12 (signed)
//
// except OpLI/OpLUI, which use [15:0] as a 16-bit immediate.
const (
	OpNop Op = iota
	OpHalt
	OpLI     // rd = signext(imm16)
	OpLUI    // rd = imm16 << 16
	OpAdd    // rd = rs1 + rs2
	OpSub    // rd = rs1 - rs2
	OpMul    // rd = rs1 * rs2
	OpAnd    // rd = rs1 & rs2
	OpOr     // rd = rs1 | rs2
	OpXor    // rd = rs1 ^ rs2
	OpShl    // rd = rs1 << (rs2 & 31)
	OpShr    // rd = rs1 >> (rs2 & 31) (logical)
	OpSlt    // rd = 1 if int32(rs1) < int32(rs2) else 0
	OpSltu   // rd = 1 if rs1 < rs2 (unsigned) else 0
	OpAddi   // rd = rs1 + signext(imm12)
	OpLw     // rd = mem32[rs1 + signext(imm12)]
	OpSw     // mem32[rs1 + signext(imm12)] = rs2
	OpBeq    // if rs1 == rs2: pc += signext(imm12)*4
	OpBne    // if rs1 != rs2: pc += signext(imm12)*4
	OpBlt    // if int32(rs1) < int32(rs2): pc += signext(imm12)*4
	OpBge    // if int32(rs1) >= int32(rs2): pc += signext(imm12)*4
	OpJal    // rd = pc+4; pc += signext(imm12)*4
	OpJr     // pc = rs1
	OpAmoAdd // rd = mem32[rs1]; mem32[rs1] += rs2 (atomic)
	OpAmoMin // rd = mem32[rs1]; mem32[rs1] = min(int32) (atomic)
	OpCoreID // rd = global core id (tileIndex*coresPerTile + coreInTile)
	OpNCores // rd = total core count
	OpOrLo   // rd = rd | (imm16 & 0xFFFF); pairs with OpLUI for 32-bit constants
	opCount
)

var opNames = [...]string{
	"nop", "halt", "li", "lui", "add", "sub", "mul", "and", "or", "xor",
	"shl", "shr", "slt", "sltu", "addi", "lw", "sw", "beq", "bne", "blt",
	"bge", "jal", "jr", "amoadd", "amomin", "coreid", "ncores", "orlo",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  int
	Rs1 int
	Rs2 int
	Imm int32 // sign-extended imm12, or imm16 for LI/LUI
}

// Encode packs the instruction into a word.
func (i Instr) Encode() uint32 {
	w := uint32(i.Op) << 24
	w |= uint32(i.Rd&0xF) << 20
	if i.Op == OpLI || i.Op == OpLUI || i.Op == OpOrLo {
		w |= uint32(uint16(i.Imm))
		return w
	}
	w |= uint32(i.Rs1&0xF) << 16
	w |= uint32(i.Rs2&0xF) << 12
	w |= uint32(i.Imm) & 0xFFF
	return w
}

// Decode unpacks a word.
func Decode(w uint32) Instr {
	op := Op(w >> 24)
	in := Instr{Op: op, Rd: int(w >> 20 & 0xF)}
	if op == OpLI || op == OpLUI || op == OpOrLo {
		// All three carry a 16-bit immediate; LI sign-extends at
		// execution, LUI shifts the raw low 16 bits up, OrLo ORs them in.
		in.Imm = int32(int16(w & 0xFFFF))
		return in
	}
	in.Rs1 = int(w >> 16 & 0xF)
	in.Rs2 = int(w >> 12 & 0xF)
	imm := int32(w & 0xFFF)
	if imm&0x800 != 0 {
		imm |= ^int32(0xFFF)
	}
	in.Imm = imm
	return in
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt:
		return i.Op.String()
	case OpLI, OpLUI, OpOrLo:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case OpAddi:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLw:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpSw:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpJal:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case OpJr:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs1)
	case OpAmoAdd, OpAmoMin:
		return fmt.Sprintf("%s r%d, r%d, (r%d)", i.Op, i.Rd, i.Rs2, i.Rs1)
	case OpCoreID, OpNCores:
		return fmt.Sprintf("%s r%d", i.Op, i.Rd)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
}
