package sim

import (
	"strings"
	"testing"

	"waferscale/internal/fault"
	"waferscale/internal/geom"
)

func TestNewMachineValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := NewMachine(cfg, nil); err == nil || !strings.Contains(err.Error(), "nil fault map") {
		t.Errorf("nil fault map: err = %v", err)
	}
	if _, err := NewMachine(cfg, fault.NewMap(geom.NewGrid(3, 3))); err == nil || !strings.Contains(err.Error(), "grid") {
		t.Errorf("grid mismatch: err = %v", err)
	}
	bad := cfg
	bad.CoresPerTile = 0
	if _, err := NewMachine(bad, fault.NewMap(cfg.Grid())); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestBroadcastOnFaultyMachine(t *testing.T) {
	cfg := smallConfig()
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(1, 1))
	fm.MarkFaulty(geom.C(2, 3))
	fm.MarkFaulty(geom.C(0, 2))
	m := newMachine(t, cfg, fm)

	prog := mustAssemble(t, `
	    li   r2, 7
	    halt
	`)
	if err := m.Broadcast(prog); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if faults := m.Faults(); len(faults) != 0 {
		t.Fatalf("faults: %v", faults)
	}
	ran := 0
	cfg.Grid().All(func(c geom.Coord) {
		tl := m.Tile(c)
		if fm.Faulty(c) {
			if tl != nil {
				t.Errorf("faulty tile %v exists", c)
			}
			return
		}
		for _, core := range tl.Cores {
			if core.Instret > 0 {
				ran++
			}
			if core.Regs[2] != 7 {
				t.Errorf("tile %v core %d did not run the broadcast program", c, core.idx)
			}
		}
	})
	if want := (16 - 3) * cfg.CoresPerTile; ran != want {
		t.Errorf("ran = %d cores, want %d", ran, want)
	}
}

func TestFaultsOnFaultyMachine(t *testing.T) {
	cfg := smallConfig()
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(3, 0))
	m := newMachine(t, cfg, fm)

	// Every core trips an unaligned access and must fault, each with a
	// located, structured error.
	prog := mustAssemble(t, `
	    li   r1, 1
	    lw   r2, 0(r1)
	    halt
	`)
	if err := m.Broadcast(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatalf("faulted cores count as halted: %v", err)
	}
	faults := m.Faults()
	if want := (16 - 1) * cfg.CoresPerTile; len(faults) != want {
		t.Fatalf("len(Faults) = %d, want %d", len(faults), want)
	}
	for _, err := range faults {
		if !strings.Contains(err.Error(), "unaligned") || !strings.Contains(err.Error(), "tile") {
			t.Fatalf("fault lacks context: %v", err)
		}
	}
}
