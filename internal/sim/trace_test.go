package sim

import (
	"bytes"
	"strings"
	"testing"

	"waferscale/internal/geom"
)

func TestTraceCapturesInstructions(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	var buf bytes.Buffer
	m.SetTrace(&buf, TraceCore(geom.C(0, 0), 0))
	prog := mustAssemble(t, `
		li  r1, 5
		li  r2, 7
		add r3, r1, r2
		halt
	`)
	if err := m.LoadProgram(geom.C(0, 0), 0, prog); err != nil {
		t.Fatal(err)
	}
	// A second, untraced core runs too.
	if err := m.LoadProgram(geom.C(1, 1), 2, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 4 {
		t.Errorf("traced %d lines, want 4:\n%s", lines, out)
	}
	for _, want := range []string{"li r1, 5", "add r3, r1, r2", "halt", "tile=(0,0) core=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "tile=(1,1)") {
		t.Error("filter leaked another core into the trace")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	if err := m.LoadProgram(geom.C(0, 0), 0, mustAssemble(t, "halt")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err) // must not crash with no writer
	}
}

func TestTraceNilFilterMatchesAll(t *testing.T) {
	m := newMachine(t, smallConfig(), nil)
	var buf bytes.Buffer
	m.SetTrace(&buf, nil)
	prog := mustAssemble(t, "halt")
	if err := m.LoadProgram(geom.C(0, 0), 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(geom.C(2, 3), 1, prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tile=(0,0)") || !strings.Contains(out, "tile=(2,3)") {
		t.Errorf("nil filter should trace every core:\n%s", out)
	}
}
