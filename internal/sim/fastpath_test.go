package sim

import (
	"testing"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/inject"
)

// The tests in this file pin the runnable-list fast path in
// Machine.Step / AllHalted to the reference full scan (kept alive
// behind the fullScan flag): same machines, same workloads, one
// stepped by each engine, everything observable compared.

// diffMachines compares every counter the two engines could plausibly
// diverge on.
func diffMachines(t *testing.T, fast, ref *Machine) {
	t.Helper()
	if fast.Cycle() != ref.Cycle() {
		t.Errorf("cycles: fast %d, ref %d", fast.Cycle(), ref.Cycle())
	}
	if fast.RemoteRequests != ref.RemoteRequests {
		t.Errorf("RemoteRequests: fast %d, ref %d", fast.RemoteRequests, ref.RemoteRequests)
	}
	if fast.BankConflicts != ref.BankConflicts {
		t.Errorf("BankConflicts: fast %d, ref %d", fast.BankConflicts, ref.BankConflicts)
	}
	if fast.AllHalted() != ref.AllHalted() {
		t.Errorf("AllHalted: fast %v, ref %v", fast.AllHalted(), ref.AllHalted())
	}
	if fn, rn := len(fast.Faults()), len(ref.Faults()); fn != rn {
		t.Errorf("fault counts: fast %d, ref %d", fn, rn)
	}
	fs, rs := fast.Net().Stats(), ref.Net().Stats()
	if fs != rs {
		t.Errorf("NoC stats: fast %+v, ref %+v", fs, rs)
	}
}

// TestMachineFastPathDifferentialBFS: a healthy BFS run must produce
// identical results, cycle counts and machine counters whether cores
// are stepped via the runnable list or the reference full scan.
func TestMachineFastPathDifferentialBFS(t *testing.T) {
	g := GridGraph(6, 6).Unweighted()
	want := g.ReferenceSSSP(0)

	run := func(fullScan bool) (*WorkloadResult, *Machine) {
		cfg := arch.DefaultConfig()
		cfg.TilesX, cfg.TilesY = 6, 6
		cfg.CoresPerTile = 2
		cfg.JTAGChains = 6
		m := newMachine(t, cfg, nil)
		m.fullScan = fullScan
		res, err := RunBFS(m, g, 0, SpreadWorkers(m, 12), 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	fastRes, fast := run(false)
	refRes, ref := run(true)

	for v := range want {
		if fastRes.Dist[v] != want[v] {
			t.Fatalf("fast path wrong answer: dist[%d] = %d, want %d", v, fastRes.Dist[v], want[v])
		}
		if fastRes.Dist[v] != refRes.Dist[v] {
			t.Fatalf("dist[%d]: fast %d, ref %d", v, fastRes.Dist[v], refRes.Dist[v])
		}
	}
	if fastRes.Cycles != refRes.Cycles {
		t.Errorf("Cycles: fast %d, ref %d", fastRes.Cycles, refRes.Cycles)
	}
	if fastRes.Instructions != refRes.Instructions {
		t.Errorf("Instructions: fast %d, ref %d", fastRes.Instructions, refRes.Instructions)
	}
	if fastRes.RemoteOps != refRes.RemoteOps {
		t.Errorf("RemoteOps: fast %d, ref %d", fastRes.RemoteOps, refRes.RemoteOps)
	}
	if fastRes.RemoteLatency != refRes.RemoteLatency {
		t.Errorf("RemoteLatency: fast %v, ref %v", fastRes.RemoteLatency, refRes.RemoteLatency)
	}
	diffMachines(t, fast, ref)
}

// TestMachineFastPathDifferentialChaos replays an identical fault
// schedule — a worker tile killed mid-run (barrier never met, budget
// expires), a link flap and a bit error — through both engines. This
// exercises the hard transitions: cores faulting outside their own
// step (KillTile), retry wakeups, and quiescent-tile skipping, all of
// which must leave the runnable lists consistent with the scan.
func TestMachineFastPathDifferentialChaos(t *testing.T) {
	g := GridGraph(8, 8).Unweighted()
	run := func(fullScan bool) (*ChaosResult, *Machine) {
		m := chaosBFSMachine(t)
		m.fullScan = fullScan
		sched := inject.NewSchedule().
			KillTileAt(2000, geom.C(1, 0)).
			FlapLink(geom.C(3, 3), geom.East, 1000, 1500).
			BitErrorAt(1200, geom.C(2, 2), 0xFF)
		if err := m.AttachSchedule(sched); err != nil {
			t.Fatal(err)
		}
		res, err := RunSSSPUnderFaults(m, g, 0, SpreadWorkers(m, 16), 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	fastRes, fast := run(false)
	refRes, ref := run(true)

	if fastRes.Completed != refRes.Completed {
		t.Fatalf("Completed: fast %v, ref %v", fastRes.Completed, refRes.Completed)
	}
	if fastRes.Cycles != refRes.Cycles {
		t.Errorf("Cycles: fast %d, ref %d", fastRes.Cycles, refRes.Cycles)
	}
	if fastRes.ReadErrors != refRes.ReadErrors {
		t.Errorf("ReadErrors: fast %d, ref %d", fastRes.ReadErrors, refRes.ReadErrors)
	}
	for v := range fastRes.Dist {
		if fastRes.Dist[v] != refRes.Dist[v] {
			t.Fatalf("dist[%d]: fast %d, ref %d", v, fastRes.Dist[v], refRes.Dist[v])
		}
	}
	fr, rr := fastRes.Report, refRes.Report
	if len(fr.KilledTiles) != len(rr.KilledTiles) ||
		len(fr.DegradedTiles) != len(rr.DegradedTiles) ||
		fr.RemappedWindows != rr.RemappedWindows ||
		fr.LostSharedBytes != rr.LostSharedBytes ||
		fr.RelayedRequests != rr.RelayedRequests ||
		fr.RelayedResponses != rr.RelayedResponses ||
		fr.RetriedOps != rr.RetriedOps ||
		fr.TimedOutOps != rr.TimedOutOps ||
		fr.ExhaustedOps != rr.ExhaustedOps ||
		fr.DroppedResponses != rr.DroppedResponses ||
		fr.DroppedForwards != rr.DroppedForwards ||
		fr.LinkFlaps != rr.LinkFlaps ||
		fr.BitErrors != rr.BitErrors {
		t.Errorf("degradation reports diverge:\nfast %+v\nref  %+v", fr, rr)
	}
	diffMachines(t, fast, ref)
}

// TestAllHaltedCounterTracksScan steps one machine and, every cycle,
// checks the O(1) running-counter answer against the reference scan by
// toggling fullScan (counters are maintained in both modes, so the
// toggle is safe). The program mix makes cores stop at different
// times: a quick halter, a longer loop, and a core that faults.
func TestAllHaltedCounterTracksScan(t *testing.T) {
	cfg := smallConfig()
	m := newMachine(t, cfg, nil)

	load := func(tile geom.Coord, core int, src string) {
		if err := m.LoadProgram(tile, core, mustAssemble(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	load(geom.C(0, 0), 0, "halt")
	load(geom.C(1, 1), 1, `
	    li  r1, 40
	loop:
	    addi r1, r1, -1
	    bne r1, r0, loop
	    halt
	`)
	load(geom.C(2, 2), 2, "la r1, 0x20000000\nlw r2, 0(r1)\nhalt") // unmapped: faults
	load(geom.C(3, 3), 3, `
	    li  r1, 15
	l2:
	    addi r1, r1, -1
	    bne r1, r0, l2
	    halt
	`)

	sawRunning := false
	for i := 0; i < 400; i++ {
		fastAns := m.AllHalted()
		m.fullScan = true
		scanAns := m.AllHalted()
		m.fullScan = false
		if fastAns != scanAns {
			t.Fatalf("cycle %d: counter says AllHalted=%v, scan says %v", m.Cycle(), fastAns, scanAns)
		}
		if !fastAns {
			sawRunning = true
		}
		if fastAns && sawRunning {
			break
		}
		m.Step()
	}
	if !sawRunning {
		t.Fatal("machine never ran")
	}
	if !m.AllHalted() {
		t.Fatal("machine did not quiesce in 400 cycles")
	}
	if len(m.Faults()) != 1 {
		t.Errorf("faults = %v, want exactly the planted one", m.Faults())
	}

	// Reloading a stopped core must re-enter it into the runnable
	// bookkeeping: the machine runs again and quiesces again.
	load(geom.C(0, 0), 0, `
	    li r1, 5
	r2l:
	    addi r1, r1, -1
	    bne r1, r0, r2l
	    halt
	`)
	if m.AllHalted() {
		t.Fatal("reloaded core not counted as running")
	}
	if err := m.Run(1000); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !m.AllHalted() {
		t.Fatal("machine did not quiesce after reload")
	}
}

// TestFastPathQuiescentTileSkip sanity-checks the fast path on a
// mostly-idle machine with faulty construction tiles: only two of 16
// tiles ever have runnable cores, and the run still matches the
// reference scan exactly.
func TestFastPathQuiescentTileSkip(t *testing.T) {
	fmFaults := []geom.Coord{geom.C(1, 2), geom.C(2, 1)}
	run := func(fullScan bool) *Machine {
		cfg := smallConfig()
		fm := fault.NewMap(cfg.Grid())
		for _, c := range fmFaults {
			fm.MarkFaulty(c)
		}
		m := newMachine(t, cfg, fm)
		m.fullScan = fullScan
		src := `
		    li  r1, 30
		q:
		    addi r1, r1, -1
		    bne r1, r0, q
		    halt
		`
		if err := m.LoadProgram(geom.C(0, 0), 1, mustAssemble(t, src)); err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(geom.C(3, 3), 0, mustAssemble(t, src)); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	diffMachines(t, run(false), run(true))
}
