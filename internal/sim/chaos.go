package sim

import (
	"context"
	"fmt"

	"waferscale/internal/arch"
)

// ChaosResult is the outcome of a workload run under runtime fault
// injection. Unlike WorkloadResult it is produced even when the run
// degrades: the machine either quiesces (every surviving core halts)
// or the cycle budget expires — it never hangs and never panics.
type ChaosResult struct {
	// Dist is the best-effort distance readback; entries whose backing
	// memory was lost read as whatever the shadow holds (zeroed).
	Dist []int32
	// Cycles is the machine cycle count when the run ended.
	Cycles int64
	// Completed reports that every started core halted (or faulted)
	// within the budget; false means the budget expired first (e.g. a
	// barrier waiting on a dead worker).
	Completed bool
	// RunErr carries the budget-exhaustion error or the first core
	// fault, for diagnostics; the run result is still valid.
	RunErr error
	// ReadErrors counts distance words that could not be read back at
	// all (owner dead with no fallback).
	ReadErrors int
	// Report is the machine's structured degradation account.
	Report DegradationReport
}

// RunSSSPUnderFaults runs the SSSP/BFS kernel like RunSSSP but
// tolerates mid-run faults: cores faulting, tiles dying, and budget
// exhaustion all produce a ChaosResult instead of an error. Attach a
// fault schedule to the machine before calling. The returned error is
// non-nil only for setup problems (bad graph, unloadable program).
//
// The run honours the machine's sharded cycle engine: set m.Shards
// (and optionally m.Workers) before calling to step the wafer in
// parallel — the result is bit-identical to a serial run, including
// the degradation report. Call m.Close after the run to release the
// shard worker goroutines.
func RunSSSPUnderFaults(m *Machine, g *Graph, src int, workers []WorkerRef, maxCycles int64) (*ChaosResult, error) {
	return RunSSSPUnderFaultsCtx(context.Background(), m, g, src, workers, maxCycles)
}

// RunSSSPUnderFaultsCtx is RunSSSPUnderFaults with cancellation: the
// machine checks ctx at cycle-boundary strides (see Machine.RunCtx),
// and on cancellation the setup error returned is ctx.Err() — no
// ChaosResult is produced, since a mid-run snapshot would look like a
// budget expiry rather than a cancelled run.
func RunSSSPUnderFaultsCtx(ctx context.Context, m *Machine, g *Graph, src int, workers []WorkerRef, maxCycles int64) (*ChaosResult, error) {
	distA, err := PrepareSSSP(m, g, src, workers)
	if err != nil {
		return nil, err
	}
	runErr := m.RunCtx(ctx, maxCycles)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return CollectSSSP(m, g, distA, runErr), nil
}

// PrepareSSSP performs the setup half of a fault-tolerant SSSP/BFS run:
// graph layout into shared memory, kernel assembly, and program plus
// per-worker parameter loads. It returns the distance array's global
// base address, which CollectSSSP needs for readback. Splitting setup
// from execution lets the warm-state forking drivers prepare one prefix
// machine, fork it per trial, and collect each fork independently.
func PrepareSSSP(m *Machine, g *Graph, src int, workers []WorkerRef) (uint32, error) {
	distA, err := layoutSSSP(m, g, src, len(workers))
	if err != nil {
		return 0, err
	}
	prog, err := Assemble(RelaxKernelSource)
	if err != nil {
		return 0, fmt.Errorf("sim: kernel does not assemble: %w", err)
	}
	for wid, w := range workers {
		if err := m.LoadProgram(w.Tile, w.Core, prog); err != nil {
			return 0, err
		}
		if err := m.WritePrivate32(w.Tile, w.Core, paramBase, uint32(wid)); err != nil {
			return 0, err
		}
		if err := m.WritePrivate32(w.Tile, w.Core, paramBase+4, arch.GlobalBase); err != nil {
			return 0, err
		}
	}
	return distA, nil
}

// CollectSSSP assembles the ChaosResult from a machine whose run ended
// (quiesced, budget expired, or forked-and-finished): completion and
// fault classification, the degradation report, and the best-effort
// distance readback. runErr is the run loop's verdict — nil for a
// quiesced machine, a *BudgetError when the budget expired.
func CollectSSSP(m *Machine, g *Graph, distA uint32, runErr error) *ChaosResult {
	res := &ChaosResult{RunErr: runErr}
	res.Completed = res.RunErr == nil
	if res.RunErr == nil {
		if faults := m.Faults(); len(faults) > 0 {
			res.RunErr = fmt.Errorf("sim: cores faulted: %v", faults[0])
		}
	}
	res.Cycles = m.Cycle()
	res.Report = m.Degradation()

	res.Dist = make([]int32, g.N)
	for i := range res.Dist {
		v, err := m.ReadGlobal32(distA + uint32(4*i))
		if err != nil {
			res.Dist[i] = Infinity
			res.ReadErrors++
			continue
		}
		res.Dist[i] = int32(v)
	}
	return res
}
