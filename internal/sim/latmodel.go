package sim

import (
	"encoding/binary"

	"waferscale/internal/geom"
	"waferscale/internal/noc"
)

// Analytical fast-path timing for the workload engine. With
// Machine.LatencyModel set, remote memory operations stop exchanging
// real packets through the cycle-stepped routers: the memory effect is
// applied immediately and the issuing core stalls for a round trip
// computed by the timing model (request leg, relay forwarding, response
// leg on the complementary network). The per-cycle network simulation
// is skipped entirely, which is where the engine spends most of its
// time on communication-heavy workloads.
//
// This is an approximation, not a different implementation of the same
// semantics: memory effects land at issue instead of mid-flight,
// backpressure and in-network contention are summarized by the model's
// queueing terms at Machine.LatencyRate, and lost-packet timeouts never
// fire (the model either delivers or reports the pair blocked). Results
// from a modeled run must therefore be labeled with the model's name
// (see Machine.TimingModelName) and never cache-keyed as cycle-exact.

// modelPerLegOverhead is the fixed per-leg cost the engine adds on top
// of the model's pair latency: ejection/re-injection at a relay (or
// final delivery) costs a cycle, matching the cycle engine's parked
// forward and response-turnaround behavior.
const modelPerLegOverhead = 1

// TimingModelName reports the backend timing remote operations:
// "cycle" for the packet-simulated engine, or the attached
// LatencyModel's name.
func (m *Machine) TimingModelName() string {
	if m.LatencyModel == nil {
		return noc.ModelNameCycle
	}
	return m.LatencyModel.ModelName()
}

// modeledLeg returns the modeled one-way latency of a possibly
// multi-leg path from src to dst: the kernel plans the route (detours
// included) and each leg is priced by the model on the leg's network.
func (m *Machine) modeledLeg(src, dst geom.Coord) (int64, bool) {
	dec, err := m.kernel.Decide(src, dst)
	if err != nil || !dec.Reachable {
		return 0, false
	}
	legs := make([]geom.Coord, 0, len(dec.Via)+2)
	legs = append(legs, src)
	legs = append(legs, dec.Via...)
	legs = append(legs, dst)
	var total float64
	for i := 0; i+1 < len(legs); i++ {
		// The kernel's decision covers the first leg; relays re-plan, so
		// price each subsequent leg by its own decision.
		net := dec.Request
		if i > 0 {
			ldec, err := m.kernel.Decide(legs[i], legs[i+1])
			if err != nil || !ldec.Reachable {
				return 0, false
			}
			net = ldec.Request
		}
		lat, ok := m.LatencyModel.PairLatency(net, legs[i], legs[i+1], m.LatencyRate)
		if !ok {
			return 0, false
		}
		total += lat + modelPerLegOverhead
	}
	return int64(total + 0.5), true
}

// modeledRoundTrip prices a full remote operation: request path out,
// response path back. The response rides the complementary network
// when that direct path is clear (the router pairing the cycle engine
// bakes in), falling back to a kernel re-plan exactly like
// flushResponses does.
func (m *Machine) modeledRoundTrip(src, dst geom.Coord) (int64, bool) {
	req, ok := m.modeledLeg(src, dst)
	if !ok {
		return 0, false
	}
	dec, err := m.kernel.Decide(src, dst)
	if err != nil || !dec.Reachable {
		return 0, false
	}
	if len(dec.Via) == 0 {
		if lat, ok := m.LatencyModel.PairLatency(dec.Request.Complement(), dst, src, m.LatencyRate); ok {
			return req + int64(lat+modelPerLegOverhead+0.5), true
		}
	}
	resp, ok := m.modeledLeg(dst, src)
	if !ok {
		return 0, false
	}
	return req + resp, true
}

// applyRemote performs a remote memory op against the backing store of
// a global address (the owner's bank, or the shadow window of a dead
// owner) and returns the old value — serveRemote without the packet.
func (m *Machine) applyRemote(addr uint32, op uint32, data uint32) (uint32, bool) {
	tile, bank, off, err := m.amap.GlobalTarget(addr)
	if err != nil {
		return 0, false
	}
	b := m.globalSlice(tile, bank, off)
	if b == nil {
		return 0, false
	}
	old := binary.LittleEndian.Uint32(b)
	switch op {
	case remStore:
		binary.LittleEndian.PutUint32(b, data)
	case remAmoAdd:
		binary.LittleEndian.PutUint32(b, old+data)
	case remAmoMin:
		if int32(data) < int32(old) {
			binary.LittleEndian.PutUint32(b, data)
		}
	}
	return old, true
}

// remoteOpModeled is remoteOp under an attached timing model: the
// memory effect applies now, the core stalls for the modeled round
// trip, and the eventual load/amo result is parked in the op's payload
// until the deadline completes it (see stepRemote).
func (m *Machine) remoteOpModeled(c *Core, in Instr, addr uint32, target geom.Coord) bool {
	rt, ok := m.modeledRoundTrip(c.tile, target)
	if !ok {
		m.degr.markDegradedOnce(target)
		m.fault(c, nil, "tile %v unreachable from %v", target, c.tile)
		return true
	}
	op := uint32(remLoad)
	reg := in.Rd
	data := uint32(0)
	switch in.Op {
	case OpSw:
		op = remStore
		reg = -1
		data = c.Regs[in.Rs2]
	case OpAmoAdd:
		op = remAmoAdd
		data = c.Regs[in.Rs2]
	case OpAmoMin:
		op = remAmoMin
		data = c.Regs[in.Rs2]
	}
	old, ok := m.applyRemote(addr, op, data)
	if !ok {
		m.fault(c, nil, "remote access lost: global address %#x has no backing", addr)
		return true
	}
	m.tagSeq++
	c.rem.injected = true // nothing to retry: no packet exists
	c.rem.net = noc.XY
	c.rem.dst = target
	c.rem.tag = op | uint32(c.idx)<<2 | m.tagSeq<<6
	c.rem.payload = uint64(addr)<<32 | uint64(old)
	c.rem.reg = reg
	c.rem.issuedAt = m.cycle
	c.rem.deadline = m.cycle + rt
	c.rem.attempts = 0
	c.state = coreRemote
	return true
}

// stepRemoteModeled completes a modeled remote op when its deadline
// arrives: the parked result lands in the destination register and the
// round trip is booked into the latency stats.
func (m *Machine) stepRemoteModeled(c *Core) {
	c.StallRemote++
	if m.cycle < c.rem.deadline {
		return
	}
	if c.rem.reg > 0 { // r0 is hardwired zero
		c.Regs[c.rem.reg] = uint32(c.rem.payload)
	}
	m.RemoteRequests++
	m.RemoteLatency += m.cycle - c.rem.issuedAt
	c.state = coreRunning
}
