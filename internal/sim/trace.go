package sim

import (
	"fmt"
	"io"

	"waferscale/internal/geom"
)

// Instruction tracing: the software-debug view the prototype would get
// over its JTAG debug ports. Enable with Machine.SetTrace; every
// retired instruction of the selected cores emits one line:
//
//	cyc=123 tile=(1,0) core=3 pc=0x0010 add r3, r1, r2
//
// Tracing the 64-core test machines is cheap; tracing all 14336 cores
// of the full system is possible but torrential — filter.

// TraceFilter selects which cores emit trace lines; nil matches all.
type TraceFilter func(tile geom.Coord, core int) bool

// SetTrace directs the instruction trace to w (nil disables tracing).
func (m *Machine) SetTrace(w io.Writer, filter TraceFilter) {
	m.traceW = w
	m.traceFilter = filter
}

// TraceCore returns a filter matching exactly one core.
func TraceCore(tile geom.Coord, core int) TraceFilter {
	return func(t geom.Coord, c int) bool { return t == tile && c == core }
}

// trace emits one line if tracing is enabled for the core.
func (m *Machine) trace(c *Core, in Instr) {
	if m.traceW == nil {
		return
	}
	if m.traceFilter != nil && !m.traceFilter(c.tile, c.idx) {
		return
	}
	fmt.Fprintf(m.traceW, "cyc=%d tile=%v core=%d pc=%#06x %s\n",
		m.cycle, c.tile, c.idx, c.PC, in)
}
