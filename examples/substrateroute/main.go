// Substrate routing (Section VIII): route the inter-chiplet wiring of
// a row of tiles — memory-chiplet buses and the inter-tile mesh links —
// with the jog-free router, including a reticle-seam crossing that
// triggers the fat-wire rule, then run DRC and print the block-etch map
// for the full wafer.
package main

import (
	"fmt"
	"os"

	"waferscale/internal/geom"
	"waferscale/internal/substrate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "substrateroute:", err)
		os.Exit(1)
	}
}

func run() error {
	rules := substrate.DefaultRules()
	reticle := substrate.DefaultReticle()
	router, err := substrate.NewRouter(rules, reticle)
	if err != nil {
		return err
	}

	// A row of 13 tiles spans the 12-tile reticle boundary, so the
	// mesh link between tiles 11 and 12 crosses the seam.
	const tilesInRow = 13
	var nets []substrate.Net
	for i := 0; i < tilesInRow; i++ {
		tg := substrate.DefaultTileGeometry(geom.Pt(float64(i)*reticle.TileWUM, 0))
		mem, err := tg.MemoryLinkNets(fmt.Sprintf("t%02d_mem", i), 250)
		if err != nil {
			return err
		}
		nets = append(nets, mem...)
		if i+1 < tilesInRow {
			mesh, err := tg.MeshLinkNets(fmt.Sprintf("t%02d_mesh", i), 240,
				float64(i+1)*reticle.TileWUM)
			if err != nil {
				return err
			}
			nets = append(nets, mesh...)
		}
	}

	routed, errs := router.RouteAll(nets)
	if len(errs) > 0 {
		return fmt.Errorf("routing failed: %v", errs[0])
	}
	u := router.Utilization()
	fmt.Printf("routed %d of %d nets jog-free\n", routed, len(nets))
	fmt.Printf("  total wire      %.1f mm\n", u.TotalWireUM/1000)
	fmt.Printf("  tracks used     %d\n", u.TracksUsed)
	fmt.Printf("  layer split     M3(h)=%d  M4(v)=%d\n",
		u.ByLayer[substrate.LayerSignalH], u.ByLayer[substrate.LayerSignalV])
	fmt.Printf("  seam crossings  %d (fat %g um wires at the reticle boundary)\n",
		u.SeamCrossings, rules.SeamWidthUM)

	viol := substrate.DRC(router.Segments(), rules, reticle)
	fmt.Printf("  DRC             %d violations\n\n", len(viol))
	for i, v := range viol {
		if i >= 5 {
			break
		}
		fmt.Println("   ", v)
	}

	plan := substrate.WaferPlan{Reticle: reticle, ArrayX: 32, ArrayY: 32}
	etch := plan.EtchMap()
	nx, ny := reticle.ReticlesFor(32, 32)
	fmt.Printf("wafer plan: %dx%d array exposures + edge ring (E=connector reticle, A=block-etched array reticle)\n", nx, ny)
	for y := ny; y >= -1; y-- {
		for x := -1; x <= nx; x++ {
			if etch[geom.C(x, y)] == substrate.RegionEdge {
				fmt.Print("E")
			} else {
				fmt.Print("A")
			}
		}
		fmt.Println()
	}
	if len(viol) > 0 {
		return fmt.Errorf("%d DRC violations", len(viol))
	}
	return nil
}
