// Profiling the unified shared memory: the waferscale system is NUMA —
// a core pays ~1 cycle for private SRAM, a few cycles for its own
// tile's banks, and a network round trip for remote tiles. This
// example runs the same histogram workload twice, once with the
// workers packed next to the data and once scattered across the wafer,
// and prints the machine profiles side by side.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := arch.DefaultConfig()
	cfg.TilesX, cfg.TilesY = 6, 6
	cfg.CoresPerTile = 4
	cfg.JTAGChains = 6

	rng := rand.New(rand.NewSource(8))
	data := make([]int32, 800)
	for i := range data {
		data[i] = int32(rng.Intn(16))
	}

	// The data and bins live at the base of the global space — i.e. on
	// tile (0,0) and its row-major successors.
	near := []sim.WorkerRef{
		{Tile: geom.C(0, 0), Core: 0}, {Tile: geom.C(0, 0), Core: 1},
		{Tile: geom.C(1, 0), Core: 0}, {Tile: geom.C(1, 0), Core: 1},
		{Tile: geom.C(0, 1), Core: 0}, {Tile: geom.C(0, 1), Core: 1},
		{Tile: geom.C(1, 1), Core: 0}, {Tile: geom.C(1, 1), Core: 1},
	}
	far := []sim.WorkerRef{
		{Tile: geom.C(5, 5), Core: 0}, {Tile: geom.C(5, 5), Core: 1},
		{Tile: geom.C(4, 5), Core: 0}, {Tile: geom.C(4, 5), Core: 1},
		{Tile: geom.C(5, 4), Core: 0}, {Tile: geom.C(5, 4), Core: 1},
		{Tile: geom.C(4, 4), Core: 0}, {Tile: geom.C(4, 4), Core: 1},
	}

	for _, placement := range []struct {
		name    string
		workers []sim.WorkerRef
	}{
		{"workers NEAR the data (tiles around (0,0))", near},
		{"workers FAR from the data (tiles around (5,5))", far},
	} {
		m, err := sim.NewMachine(cfg, fault.NewMap(cfg.Grid()))
		if err != nil {
			return err
		}
		bins, res, err := sim.RunHistogram(m, data, 16, placement.workers, 50_000_000)
		if err != nil {
			return err
		}
		total := int32(0)
		for _, b := range bins {
			total += b
		}
		fmt.Printf("=== %s ===\n", placement.name)
		fmt.Printf("result: %d samples binned (exact), %d cycles, %.1f cyc mean remote latency\n",
			total, res.Cycles, res.RemoteLatency)
		m.WriteProfile(os.Stdout, 4)
		fmt.Println()
	}
	fmt.Println("the far placement pays more cycles per remote access — the NUMA cost")
	fmt.Println("the hierarchical tile architecture trades for its unified address space.")
	return nil
}
