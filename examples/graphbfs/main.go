// Graph workloads on the simulated waferscale machine: this is the
// reproduction of the paper's validation ("We were successfully able to
// run various workloads including graph applications such as
// breadth-first search (BFS), single-source shortest path (SSSP), etc.
// on this system" — Section II, done there on a reduced-size FPGA
// emulation).
//
// The example builds a 4x4-tile machine with one faulty tile, lays a
// random graph out in the unified shared memory, runs the WS-ISA
// relaxation kernel on cores spread across the wafer, and checks the
// result against a host-side reference.
package main

import (
	"fmt"
	"os"

	"waferscale/internal/arch"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphbfs:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := arch.DefaultConfig()
	cfg.TilesX, cfg.TilesY = 4, 4
	cfg.CoresPerTile = 4
	cfg.JTAGChains = 4

	// One tile died in assembly; the kernel routes around it.
	fm := fault.NewMap(cfg.Grid())
	fm.MarkFaulty(geom.C(2, 1))

	g := sim.RandomGraph(96, 280, 9, 7)
	fmt.Printf("machine: %dx%d tiles, %d cores, tile (2,1) faulty\n",
		cfg.TilesX, cfg.TilesY, cfg.TotalCores())
	fmt.Printf("graph:   %d vertices, %d edges\n\n", g.N, g.M())

	for _, wl := range []struct {
		name string
		g    *sim.Graph
	}{
		{"BFS ", g.Unweighted()},
		{"SSSP", g},
	} {
		m, err := sim.NewMachine(cfg, fm)
		if err != nil {
			return err
		}
		workers := sim.AllWorkers(m, 12)
		res, err := sim.RunSSSP(m, wl.g, 0, workers, 50_000_000)
		if err != nil {
			return err
		}
		want := wl.g.ReferenceSSSP(0)
		bad := 0
		for v := range want {
			if res.Dist[v] != want[v] {
				bad++
			}
		}
		status := "OK"
		if bad > 0 {
			status = fmt.Sprintf("%d MISMATCHES", bad)
		}
		fmt.Printf("%s  %9d cycles  %9d instret  %7d remote ops  %5.1f cyc/remote  verify: %s\n",
			wl.name, res.Cycles, res.Instructions, res.RemoteOps, res.RemoteLatency, status)
		if bad > 0 {
			return fmt.Errorf("%s diverged from host reference", wl.name)
		}
	}

	fmt.Println("\nboth kernels ran as WS-ISA programs over the dual-DoR mesh and verified.")
	return nil
}
