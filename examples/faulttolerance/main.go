// Fault-tolerance sweep: the design decisions the paper motivates with
// "fault tolerance and resiliency was one of the primary drivers"
// exercised together. For growing fault counts on the 32x32 wafer this
// example measures:
//
//   - clock delivery (Section IV): healthy tiles that still receive the
//     forwarded clock;
//   - network connectivity (Section VI / Fig. 6): pairs disconnected
//     with one vs. two DoR networks;
//   - kernel detours (Section VI): how many residual pairs the
//     intermediate-tile workaround repairs.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"waferscale/internal/clock"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/noc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faulttolerance:", err)
		os.Exit(1)
	}
}

func run() error {
	grid := geom.NewGrid(32, 32)
	fmt.Println("fault sweep on the 32x32 wafer (seeded random fault maps)")
	fmt.Printf("%7s %14s %14s %14s %14s\n",
		"faults", "clock-starved", "1-net disc.%", "2-net disc.%", "after detours")

	// The detour analysis decides all ~1M pairs via the kernel, so it
	// runs on a 16x16 sub-array to stay quick; the clock and Fig. 6
	// numbers use the full wafer.
	detourGrid := geom.NewGrid(16, 16)

	for _, faults := range []int{1, 2, 5, 10, 20, 40} {
		rng := rand.New(rand.NewSource(int64(faults) * 97))
		fm := fault.Random(grid, faults, rng)

		// Clock: pick any healthy edge generator.
		setup := clock.DefaultSetup(grid)
		if fm.Faulty(setup.Generators[0]) {
			for _, c := range grid.EdgeCoords() {
				if fm.Healthy(c) {
					setup.Generators = []geom.Coord{c}
					break
				}
			}
		}
		clkRep, err := clock.AnalyzeResiliency(fm, setup)
		if err != nil {
			return err
		}

		st := noc.NewAnalyzer(fm).AllPairs()

		dfm := fault.Random(detourGrid, faults, rand.New(rand.NewSource(int64(faults)*97)))
		k := noc.NewKernel(dfm)
		_, _, unreachable := k.PlanAll()
		healthy := dfm.HealthyCount()
		pairs := healthy * (healthy - 1)
		residualPct := 100 * float64(unreachable) / float64(pairs)

		fmt.Printf("%7d %14d %13.2f%% %13.3f%% %13.4f%%\n",
			faults, len(clkRep.UnreachedTiles), st.PctSingle(), st.PctDual(), residualPct)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - clock-starved counts healthy tiles walled off from every edge path;")
	fmt.Println("    the forwarding scheme reaches everything else (Fig. 4).")
	fmt.Println("  - the two-network column reproduces Fig. 6's collapse of disconnections;")
	fmt.Println("  - kernel detours then repair every pair that is still 4-connected,")
	fmt.Println("    so the residual column counts only truly partitioned tiles.")
	return nil
}
