// Quickstart: build the paper's 2048-chiplet, 14336-core waferscale
// processor design point and run every analysis — Table I, the Fig. 2
// power droop, Fig. 4 clock resiliency, Section V bonding yield, the
// Fig. 6 network Monte Carlo, the Section VII test timing and the
// Section VIII substrate checks — against a wafer with a few faulty
// tiles.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"waferscale/internal/core"
	"waferscale/internal/fault"
)

func main() {
	design := core.NewDesign()
	if err := design.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	// Even with dual-pillar bonding a 2048-chiplet wafer can lose a
	// chiplet or two; analyze against a pessimistic 5-fault map.
	fm := fault.Random(design.Cfg.Grid(), 5, rand.New(rand.NewSource(2021)))
	fmt.Printf("fault map: %d faulty tiles at %v\n\n", fm.Count(), fm.FaultyCoords())

	if err := design.WriteFullReport(os.Stdout, fm, 8, 2021); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
