// Package waferscale is an open-source reproduction, in pure Go, of
// the design flow behind "Designing a 2048-Chiplet, 14336-Core
// Waferscale Processor" (Pal et al., DAC 2021): architecture derivation
// (Table I), edge power delivery and LDO regulation (Section III /
// Fig. 2), fault-tolerant clock forwarding (Section IV / Figs. 3-4),
// fine-pitch I/O and bonding yield (Section V / Figs. 5, 8), the dual
// dimension-ordered waferscale network with its resiliency Monte Carlo
// (Section VI / Figs. 6-7), the JTAG test infrastructure (Section VII /
// Figs. 9-10), the Si-IF substrate with its jog-free router (Section
// VIII), and a cycle-counted functional simulator that runs the
// paper's BFS/SSSP validation workloads as real programs.
//
// The implementation lives under internal/; see README.md for the
// package map and EXPERIMENTS.md for paper-versus-measured numbers.
// The benchmarks in bench_test.go regenerate every table and figure.
package waferscale
