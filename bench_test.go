// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark both measures the cost of the analysis and
// reports the reproduced headline values via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the experiment harness (the
// numbers land in bench_output.txt; EXPERIMENTS.md maps them to the
// paper's claims).
package waferscale

import (
	"context"
	"math/rand"
	"testing"

	"waferscale/internal/arch"
	"waferscale/internal/chipio"
	"waferscale/internal/clock"
	"waferscale/internal/core"
	"waferscale/internal/fault"
	"waferscale/internal/geom"
	"waferscale/internal/jtag"
	"waferscale/internal/noc"
	"waferscale/internal/noc/analytical"
	"waferscale/internal/pdn"
	"waferscale/internal/sim"
	"waferscale/internal/substrate"
	"waferscale/internal/workload"
)

// BenchmarkTable1Spec regenerates Table I from the architectural
// derivations.
func BenchmarkTable1Spec(b *testing.B) {
	d := core.NewDesign()
	var rows []core.SpecRow
	for i := 0; i < b.N; i++ {
		rows = d.Spec()
	}
	_ = rows
	c := d.Cfg
	b.ReportMetric(float64(c.TotalCores()), "cores")
	b.ReportMetric(c.ComputeThroughputOPS()/1e12, "TOPS")
	b.ReportMetric(c.SharedMemBandwidth()/1e12, "sharedTBps")
	b.ReportMetric(c.NetworkBandwidth()/1e12, "netTBps")
	b.ReportMetric(c.PeakWaferCurrentA(), "edgeA")
	b.ReportMetric(c.PeakWaferPowerW(), "peakW")
}

// BenchmarkFig2DroopMap solves the 32x32 PDN at peak draw: 2.5 V at the
// edge drooping to ~1.4 V at the center (paper Fig. 2).
func BenchmarkFig2DroopMap(b *testing.B) {
	d := core.NewDesign()
	cfg := pdn.DefaultConfig(d.Cfg.Grid(), d.TileCurrentA())
	var min float64
	for i := 0; i < b.N; i++ {
		sol, err := pdn.Solve(cfg)
		if err != nil {
			b.Fatal(err)
		}
		min, _ = sol.MinVolt()
	}
	b.ReportMetric(min, "centerV")
	b.ReportMetric(2.5, "edgeV")
}

// pdnBenchConfig is the shared 70x70 scale-up solve the serial/parallel
// benchmark pair times — large enough that the red-black sweeps
// dominate setup cost.
func pdnBenchConfig() pdn.Config {
	d := core.NewDesign()
	cfg := pdn.DefaultConfig(geom.NewGrid(70, 70), d.TileCurrentA())
	return cfg
}

// BenchmarkPDNSolveSerial is the single-goroutine baseline for the
// red-black SOR solver on a 70x70 array.
func BenchmarkPDNSolveSerial(b *testing.B) {
	cfg := pdnBenchConfig()
	cfg.Serial = true
	for i := 0; i < b.N; i++ {
		if _, err := pdn.Solve(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDNSolveParallel is the same solve on the GOMAXPROCS row-
// chunked pool. The red-black ordering makes the result bit-identical
// to the serial baseline; compare ns/op against BenchmarkPDNSolveSerial
// for the speedup (~2x or better on >= 4 cores; no speedup is possible
// on a single-core host).
func BenchmarkPDNSolveParallel(b *testing.B) {
	cfg := pdnBenchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := pdn.Solve(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec3PowerStrategies compares edge-LDO, edge-buck and TWV
// delivery (paper Section III).
func BenchmarkSec3PowerStrategies(b *testing.B) {
	in := pdn.DefaultStrategyInput(geom.NewGrid(32, 32), 0.350, 1.21)
	var results []pdn.StrategyResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = pdn.Compare(in)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		switch r.Strategy {
		case pdn.StrategyEdgeLDO:
			b.ReportMetric(r.WaferCurrentA, "ldoA")
			b.ReportMetric(r.AreaOverheadPct, "ldoArea%")
		case pdn.StrategyEdgeBuck:
			b.ReportMetric(r.WaferCurrentA, "buckA")
			b.ReportMetric(r.AreaOverheadPct, "buckArea%")
		}
	}
}

// BenchmarkFig3ClockSelection exercises the per-tile selection FSM:
// cycles to lock onto the first toggling input at the default toggle
// count of 16 (paper Fig. 3).
func BenchmarkFig3ClockSelection(b *testing.B) {
	locked := 0
	for i := 0; i < b.N; i++ {
		s := clock.NewSelector()
		s.SetMode(clock.ModeAuto)
		level := false
		for !s.Locked() {
			level = !level
			s.Step([4]bool{level, false, false, false})
		}
		locked++
	}
	b.ReportMetric(16, "togglesToLock")
}

// BenchmarkFig4ClockForwarding runs the clock setup simulation on the
// paper's 8x8/6-fault scenario (one boxed-in tile stays unclocked) and
// on the full 32x32 wafer.
func BenchmarkFig4ClockForwarding(b *testing.B) {
	fm := fault.NewMap(geom.NewGrid(8, 8))
	for _, c := range []geom.Coord{
		geom.C(4, 5), geom.C(3, 4), geom.C(5, 4), geom.C(4, 3),
		geom.C(0, 1), geom.C(1, 2),
	} {
		fm.MarkFaulty(c)
	}
	cfg := clock.SetupConfig{Generators: []geom.Coord{geom.C(0, 4)}, ToggleCount: 16, HopLatency: 1}
	var starved int
	for i := 0; i < b.N; i++ {
		rep, err := clock.AnalyzeResiliency(fm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		starved = len(rep.UnreachedTiles)
	}
	b.ReportMetric(float64(fm.Count()), "faults")
	b.ReportMetric(float64(starved), "starvedTiles")
}

// BenchmarkFig5IOYield computes the Section V yield headline: 81.46% ->
// 99.998% chiplet bonding yield; 380 -> ~0 expected faulty chiplets.
func BenchmarkFig5IOYield(b *testing.B) {
	var cmp chipio.YieldComparison
	for i := 0; i < b.N; i++ {
		cmp = chipio.CompareRedundancy(0.9999, 2048, 2048)
	}
	b.ReportMetric(cmp.SingleChipletYield*100, "yield1pillar%")
	b.ReportMetric(cmp.DualChipletYield*100, "yield2pillar%")
	b.ReportMetric(cmp.SingleExpectedBad, "bad1pillar")
	b.ReportMetric(cmp.DualExpectedBad, "bad2pillar")
	b.ReportMetric(chipio.DefaultIOCell().EnergyPerBitJ(500)*1e12, "pJperBit")
}

// BenchmarkFig6DisconnectedPairs is the paper's Fig. 6 Monte Carlo: %
// of source-destination pairs disconnected at 5 faulty chiplets, one
// versus two DoR networks, on the full 32x32 array.
func BenchmarkFig6DisconnectedPairs(b *testing.B) {
	grid := geom.NewGrid(32, 32)
	var pts []noc.Fig6Point
	for i := 0; i < b.N; i++ {
		pts = noc.Fig6Sweep(grid, []int{5}, 8, 2021)
	}
	b.ReportMetric(pts[0].PctSingle.Mean, "disc1net%@5")
	b.ReportMetric(pts[0].PctDual.Mean, "disc2net%@5")
}

// BenchmarkFig7PacketSim drives request/response traffic through the
// dual-network cycle simulator (paper Fig. 7: requests on one network,
// responses on the complement over the same tiles).
func BenchmarkFig7PacketSim(b *testing.B) { benchFig7PacketSim(b, 1) }

// Sharded variants of the same workload: identical traffic and
// bit-identical statistics, stepped by 2/4/8 spatial shards. Compare
// ns/op against the serial baseline for the speedup (>= 1.5x at 4
// shards on a >= 4-core host; no speedup is possible on fewer cores).
func BenchmarkFig7PacketSimShard2(b *testing.B) { benchFig7PacketSim(b, 2) }
func BenchmarkFig7PacketSimShard4(b *testing.B) { benchFig7PacketSim(b, 4) }
func BenchmarkFig7PacketSimShard8(b *testing.B) { benchFig7PacketSim(b, 8) }

func benchFig7PacketSim(b *testing.B, shards int) {
	fm := fault.NewMap(geom.NewGrid(16, 16))
	rng := rand.New(rand.NewSource(7))
	var avgLat float64
	for i := 0; i < b.N; i++ {
		s, err := noc.NewSim(fm, noc.DefaultSimConfig())
		if err != nil {
			b.Fatal(err)
		}
		s.Shards = shards
		s.OnDeliver = func(p noc.Packet) {
			if p.Kind == noc.Request {
				s.Inject(p.Net.Complement(), p.Dst, p.Src, noc.Response, p.Tag, p.Payload)
			}
		}
		for j := 0; j < 512; j++ {
			src := geom.C(rng.Intn(16), rng.Intn(16))
			dst := geom.C(rng.Intn(16), rng.Intn(16))
			s.Inject(noc.Network(j%2), src, dst, noc.Request, uint32(j), 0)
			s.Step()
		}
		if err := s.RunUntilDrained(100000); err != nil {
			b.Fatal(err)
		}
		avgLat = s.Stats().AvgLatency()
		s.Close()
	}
	b.ReportMetric(avgLat, "avgLatencyCyc")
}

// BenchmarkFig8PadRing builds the compute chiplet's pad ring with probe
// pads and the two-set I/O columns (paper Figs. 5 and 8) and evaluates
// the single-layer fallback (Section VIII).
func BenchmarkFig8PadRing(b *testing.B) {
	cfg := chipio.RingConfig{
		DieWidthMM: 3.15, DieHeightMM: 2.4,
		SignalIOs: 2020, EssentialFrac: 0.55,
		ProbePads: 40, PillarsPerPad: 2,
	}
	var lossPct float64
	for i := 0; i < b.N; i++ {
		ring, err := chipio.BuildPadRing(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lossPct = ring.SingleLayerFallback(5, 2).CapacityLossPct
	}
	b.ReportMetric(lossPct, "fallbackLoss%")
}

// BenchmarkFig9TileChain measures the broadcast-mode speedup with the
// bit-accurate JTAG model (paper Fig. 9: 14 DAPs -> 1 effective DAP).
func BenchmarkFig9TileChain(b *testing.B) {
	program := make([]uint32, 32)
	for i := range program {
		program[i] = uint32(i)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		tile := jtag.NewTileChain(14, 1)
		tile.Broadcast = true
		ctl := jtag.NewController(tile)
		ctl.Reset()
		if err := ctl.WriteWords(0, program); err != nil {
			b.Fatal(err)
		}
		cycles = ctl.Cycles
	}
	b.ReportMetric(float64(cycles), "TCKbroadcast")
	b.ReportMetric(jtag.BroadcastSpeedup(14, jtag.DefaultLoadModel()), "broadcastSpeedup")
}

// BenchmarkFig10ProgressiveUnroll localizes a faulty chiplet in a
// 32-tile row chain by progressive unrolling (paper Fig. 10).
func BenchmarkFig10ProgressiveUnroll(b *testing.B) {
	var found int
	for i := 0; i < b.N; i++ {
		w := jtag.NewWaferChain(32, 2)
		w.Tiles[17].MarkFaulty()
		res, err := jtag.ProgressiveUnroll(w)
		if err != nil {
			b.Fatal(err)
		}
		found = res.FaultyTile
	}
	b.ReportMetric(float64(found), "faultLocalizedAt")
}

// BenchmarkSec7LoadTime computes the Section VII headline: full-wafer
// memory load of ~2.5 h on one chain versus ~5 min on 32 row chains.
func BenchmarkSec7LoadTime(b *testing.B) {
	var rep jtag.Sec7Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = jtag.Sec7Headline(1024, 32, 1536<<10, 14)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.SingleChain.Hours(), "singleChainH")
	b.ReportMetric(rep.MultiChain.Minutes(), "multiChainMin")
	b.ReportMetric(rep.Speedup, "chainSpeedup")
	b.ReportMetric(rep.BroadcastSpeedup, "broadcast14x")
}

// BenchmarkSec8SubstrateRoute routes a full tile pair's inter-chiplet
// nets jog-free and DRCs them (paper Section VIII).
func BenchmarkSec8SubstrateRoute(b *testing.B) {
	rules := substrate.DefaultRules()
	reticle := substrate.DefaultReticle()
	tile := substrate.DefaultTileGeometry(geom.Pt(0, 0))
	var routed, violations int
	for i := 0; i < b.N; i++ {
		r, err := substrate.NewRouter(rules, reticle)
		if err != nil {
			b.Fatal(err)
		}
		mem, err := tile.MemoryLinkNets("mem", 250)
		if err != nil {
			b.Fatal(err)
		}
		mesh, err := tile.MeshLinkNets("mesh", 240, tile.Origin.X+tile.ComputeW+tile.GapUM)
		if err != nil {
			b.Fatal(err)
		}
		var errs []error
		routed, errs = r.RouteAll(append(mem, mesh...))
		if len(errs) > 0 {
			b.Fatal(errs[0])
		}
		violations = len(substrate.DRC(r.Segments(), rules, reticle))
	}
	b.ReportMetric(float64(routed), "netsRouted")
	b.ReportMetric(float64(violations), "drcViolations")
}

// BenchmarkE1GraphWorkloads runs the BFS validation workload as a
// WS-ISA program on a 4x4-tile machine (the paper's FPGA-emulation
// stand-in) and verifies against the host reference.
func BenchmarkE1GraphWorkloads(b *testing.B) { benchE1GraphWorkloads(b, 1) }

// Sharded variants: the same BFS run stepped by 2/4 spatial shards of
// the machine's core loop and NoC (bit-identical result and cycle
// count). 8 shards would exceed the 4-row grid, so the curve stops at 4.
func BenchmarkE1GraphWorkloadsShard2(b *testing.B) { benchE1GraphWorkloads(b, 2) }
func BenchmarkE1GraphWorkloadsShard4(b *testing.B) { benchE1GraphWorkloads(b, 4) }

func benchE1GraphWorkloads(b *testing.B, shards int) {
	cfg := arch.DefaultConfig()
	cfg.TilesX, cfg.TilesY, cfg.CoresPerTile, cfg.JTAGChains = 4, 4, 4, 4
	g := sim.GridGraph(8, 8).Unweighted()
	want := g.ReferenceSSSP(0)
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(cfg, fault.NewMap(cfg.Grid()))
		if err != nil {
			b.Fatal(err)
		}
		m.Shards = shards
		m.Net().Shards = shards
		res, err := sim.RunBFS(m, g, 0, sim.AllWorkers(m, 16), 50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				b.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
			}
		}
		cycles = res.Cycles
		m.Close()
	}
	b.ReportMetric(float64(cycles), "machineCycles")
}

// BenchmarkAblationOddEven compares the future-work odd-even adaptive
// routing against the prototype's dual-DoR scheme (paper footnote 4).
func BenchmarkAblationOddEven(b *testing.B) {
	grid := geom.NewGrid(16, 16)
	rng := rand.New(rand.NewSource(3))
	fm := fault.Random(grid, 8, rng)
	var dorPct, oePct float64
	for i := 0; i < b.N; i++ {
		dorPct = noc.NewAnalyzer(fm).AllPairs().PctDual()
		oePct = noc.OddEvenAllPairs(fm).Pct()
	}
	b.ReportMetric(dorPct, "dualDoRdisc%")
	b.ReportMetric(oePct, "oddEvenDisc%")
}

// BenchmarkAblationDetour quantifies the kernel's intermediate-tile
// workaround: residual unreachable pairs after relays.
func BenchmarkAblationDetour(b *testing.B) {
	grid := geom.NewGrid(16, 16)
	fm := fault.Random(grid, 10, rand.New(rand.NewSource(11)))
	var direct, detoured, unreachable int
	for i := 0; i < b.N; i++ {
		k := noc.NewKernel(fm)
		direct, detoured, unreachable = k.PlanAll()
	}
	total := float64(direct + detoured + unreachable)
	b.ReportMetric(100*float64(detoured)/total, "detoured%")
	b.ReportMetric(100*float64(unreachable)/total, "unreachable%")
}

// BenchmarkAblationTWV evaluates the not-yet-ready through-wafer-via
// delivery the paper defers (Section III): droop with interior supply
// points versus edge-only.
func BenchmarkAblationTWV(b *testing.B) {
	d := core.NewDesign()
	var edgeMin, twvMin float64
	for i := 0; i < b.N; i++ {
		edge, err := pdn.Evaluate(pdn.StrategyEdgeLDO, pdn.DefaultStrategyInput(d.Cfg.Grid(), 0.350, 1.21))
		if err != nil {
			b.Fatal(err)
		}
		twv, err := pdn.Evaluate(pdn.StrategyTWV, pdn.DefaultStrategyInput(d.Cfg.Grid(), 0.350, 1.21))
		if err != nil {
			b.Fatal(err)
		}
		edgeMin, twvMin = edge.MinTileVolts, twv.MinTileVolts
	}
	b.ReportMetric(edgeMin, "edgeMinV")
	b.ReportMetric(twvMin, "twvMinV")
}

// BenchmarkSec3LDOTransient validates the 20 nF decap against the
// paper's worst-case 200 mA load step by time-domain simulation.
func BenchmarkSec3LDOTransient(b *testing.B) {
	cfg := pdn.DefaultTransient()
	var res *pdn.TransientResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pdn.SimulateTransient(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.UndershootV*1000, "undershootMV")
	b.ReportMetric(boolMetric(res.InWindow), "inWindow")
}

// BenchmarkSec4JitterAccumulation quantifies footnote 3: accumulated
// forwarding jitter versus the per-hop budget that async FIFOs reduce
// the problem to.
func BenchmarkSec4JitterAccumulation(b *testing.B) {
	j := clock.DefaultJitter()
	rng := rand.New(rand.NewSource(1))
	var rms float64
	for i := 0; i < b.N; i++ {
		rms = j.SimulateRMS(62, 500, rng)
	}
	b.ReportMetric(rms, "rms62hopsPS")
	b.ReportMetric(float64(j.MaxSafeHopsSynchronous(300e6, 0.10)), "syncHopLimit")
}

// BenchmarkSec7AKGDScreening runs the pre-bond probe test over a batch
// of chiplets and reports the with/without-KGD assembly outcome.
func BenchmarkSec7AKGDScreening(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	var res jtag.KGDResult
	for i := 0; i < b.N; i++ {
		batch := jtag.RandomBatch(64, 4, 0.9, rng)
		res, _ = jtag.ScreenChiplets(batch)
		if res.FalseAccepts+res.FalseRejects != 0 {
			b.Fatalf("screening errors: %+v", res)
		}
	}
	out := jtag.CompareKGD(2048, 0.90, 0.99998)
	b.ReportMetric(out.FaultyWithoutKGD, "badSitesNoKGD")
	b.ReportMetric(out.FaultyWithKGD, "badSitesKGD")
}

// BenchmarkNoCThroughput measures the latency-throughput curve under
// uniform random traffic, one sub-benchmark per NoC topology (the
// dual-DoR mesh plus the cmesh/express/vertical link graphs), so
// BENCH_noc.json tracks every topology's engine cost side by side.
func BenchmarkNoCThroughput(b *testing.B) {
	for _, topo := range noc.TopologyNames() {
		topo := topo
		b.Run(topo, func(b *testing.B) { benchNoCThroughput(b, 1, topo) })
	}
}

// Sharded variants of the mesh throughput sweep (same curve,
// bit-identical points, 2/4/8 spatial shards stepping each rate's sim).
func BenchmarkNoCThroughputShard2(b *testing.B) { benchNoCThroughput(b, 2, noc.TopoMesh) }
func BenchmarkNoCThroughputShard4(b *testing.B) { benchNoCThroughput(b, 4, noc.TopoMesh) }
func BenchmarkNoCThroughputShard8(b *testing.B) { benchNoCThroughput(b, 8, noc.TopoMesh) }

func benchNoCThroughput(b *testing.B, shards int, topology string) {
	grid := geom.NewGrid(8, 8)
	fm := fault.NewMap(grid)
	cfg := noc.DefaultThroughputConfig()
	cfg.WarmupCycles, cfg.MeasureCycles = 200, 600
	cfg.Shards = shards
	cfg.Topology = topology
	// Probe well below every topology's bound, then at its bound.
	sat := noc.IdealSaturation(topology, grid)
	var pts []noc.ThroughputPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = noc.MeasureThroughput(fm, cfg, []float64{0.05, sat})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].AvgLatency, "lowLoadLatency")
	b.ReportMetric(pts[1].DeliveredRate, "saturatedRate")
	b.ReportMetric(sat, "idealBound")
}

// BenchmarkSec8FullWaferRoute routes the complete 32x32 wafer netlist
// (~730k nets) in one pass — the scalability claim behind the paper's
// custom router.
func BenchmarkSec8FullWaferRoute(b *testing.B) {
	cfg := substrate.DefaultWaferNetlist(geom.NewGrid(32, 32))
	var routed int
	for i := 0; i < b.N; i++ {
		_, n, err := substrate.RouteWafer(cfg, substrate.DefaultRules(), substrate.DefaultReticle())
		if err != nil {
			b.Fatal(err)
		}
		routed = n
	}
	b.ReportMetric(float64(routed), "netsRouted")
}

// BenchmarkE1MatVecHistogram runs the other two workload classes the
// paper's introduction motivates (ML, data analytics) on the machine.
func BenchmarkE1MatVecHistogram(b *testing.B) {
	cfg := arch.DefaultConfig()
	cfg.TilesX, cfg.TilesY, cfg.CoresPerTile, cfg.JTAGChains = 4, 4, 4, 4
	a, x := sim.RandomMatrix(16, 3)
	wantY := sim.ReferenceMatVec(a, x)
	data := make([]int32, 256)
	for i := range data {
		data[i] = int32(i % 8)
	}
	wantBins := sim.ReferenceHistogram(data, 8)
	var mvCycles, histCycles int64
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(cfg, fault.NewMap(cfg.Grid()))
		if err != nil {
			b.Fatal(err)
		}
		y, res, err := sim.RunMatVec(m, a, x, sim.AllWorkers(m, 8), 20_000_000)
		if err != nil {
			b.Fatal(err)
		}
		for j := range wantY {
			if y[j] != wantY[j] {
				b.Fatal("matvec mismatch")
			}
		}
		mvCycles = res.Cycles

		m2, err := sim.NewMachine(cfg, fault.NewMap(cfg.Grid()))
		if err != nil {
			b.Fatal(err)
		}
		bins, res2, err := sim.RunHistogram(m2, data, 8, sim.AllWorkers(m2, 8), 20_000_000)
		if err != nil {
			b.Fatal(err)
		}
		for j := range wantBins {
			if bins[j] != wantBins[j] {
				b.Fatal("histogram mismatch")
			}
		}
		histCycles = res2.Cycles
	}
	b.ReportMetric(float64(mvCycles), "matvecCycles")
	b.ReportMetric(float64(histCycles), "histogramCycles")
}

func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// BenchmarkChaosBFSSurvival runs the runtime analogue of the Fig. 6
// Monte Carlo: BFS on the live machine while seeded tile kills land
// mid-run, reporting the completion and verification rates the
// graceful-degradation layer sustains.
func BenchmarkChaosBFSSurvival(b *testing.B) {
	benchChaosBFSSurvival(b, false)
}

// BenchmarkChaosBFSSurvivalForked is the same sweep with warm-state
// forking on: each trial forks off a shared fault-free prefix machine
// instead of replaying the prefix from cycle 0. Results are
// bit-identical to the unforked variant; only wall clock differs.
func BenchmarkChaosBFSSurvivalForked(b *testing.B) {
	benchChaosBFSSurvival(b, true)
}

func benchChaosBFSSurvival(b *testing.B, fork bool) {
	d := core.NewDesign()
	cfg := core.DefaultChaosConfig()
	cfg.Side, cfg.Workers, cfg.GraphSide = 4, 8, 6
	cfg.Trials = 2
	cfg.Kills = []int{0, 1}
	cfg.MaxCycles = 80_000
	cfg.Fork = fork
	var points []core.ChaosPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = d.RunChaos(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	healthy, killed := points[0], points[len(points)-1]
	b.ReportMetric(healthy.VerifiedRate()*100, "verified%@0kills")
	b.ReportMetric(killed.CompletedRate()*100, "completed%@1kill")
	b.ReportMetric(killed.MeanRetries, "retries@1kill")
	b.ReportMetric(killed.MeanLostKiB, "lostKiB@1kill")
}

// BenchmarkDSEArraySweep runs the scale-up sweep (conclusion:
// "developing design methods for higher-power waferscale systems").
func BenchmarkDSEArraySweep(b *testing.B) {
	d := core.NewDesign()
	var knee int
	for i := 0; i < b.N; i++ {
		pts, err := d.SweepArraySize([]int{8, 16, 32, 48})
		if err != nil {
			b.Fatal(err)
		}
		knee = 0
		for _, p := range pts {
			if p.RegulationOK {
				knee = p.Tiles
			}
		}
	}
	b.ReportMetric(float64(knee), "largestRegulatingTiles")
}

// BenchmarkAnalyticalFig7 answers the same question as
// BenchmarkFig7PacketSim — per-pair latency statistics for 512 random
// request/response pairs on a fault-free 16x16 mesh — through the
// closed-form analytical model instead of stepping cycles. Compare
// ns/op against BenchmarkFig7PacketSim for the fast path's per-point
// advantage (the two-tier DSE screen budgets on >= 100x).
func BenchmarkAnalyticalFig7(b *testing.B) {
	fm := fault.NewMap(geom.NewGrid(16, 16))
	rng := rand.New(rand.NewSource(7))
	var avgLat float64
	for i := 0; i < b.N; i++ {
		m, err := analytical.New(fm, analytical.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for j := 0; j < 512; j++ {
			src := geom.C(rng.Intn(16), rng.Intn(16))
			dst := geom.C(rng.Intn(16), rng.Intn(16))
			req := noc.Network(j % 2)
			lat, ok := m.PairLatency(req, src, dst, 0.05)
			if !ok {
				continue
			}
			rsp, ok2 := m.PairLatency(req.Complement(), dst, src, 0.05)
			if !ok2 {
				continue
			}
			sum += lat + rsp
			n++
		}
		avgLat = sum / float64(n)
	}
	b.ReportMetric(avgLat, "avgRoundTripCyc")
}

// twoTierBenchSpace is a 105-point design grid spanning the scale-up
// question the paper's conclusion poses: how far does the fixed
// edge-supply design scale? Sides 48-64 are infeasible at every edge
// voltage the LDO tracks — the analytical screen discards them for
// microseconds, while the exhaustive baseline must still pay their
// cycle-accurate NoC probes (a side-64 mesh is 4096 tiles) to label
// every point. That asymmetry is where the two-tier speedup lives.
func twoTierBenchSpace() core.ParetoSpace {
	return core.ParetoSpace{
		Sides:   []int{8, 12, 16, 24, 48, 56, 64},
		EdgeV:   []float64{2.0, 2.25, 2.5, 2.75, 3.0},
		Pillars: []int{1, 2, 3},
	}
}

// BenchmarkParetoExhaustive evaluates the 100-point space entirely with
// the cycle-accurate engine — the baseline the two-tier run is measured
// against.
func BenchmarkParetoExhaustive(b *testing.B) {
	d := core.NewDesign()
	var frontier int
	for i := 0; i < b.N; i++ {
		run, err := d.ExploreParetoCtx(context.Background(), twoTierBenchSpace(), core.ParetoOpts{})
		if err != nil {
			b.Fatal(err)
		}
		frontier = len(run.Frontier)
	}
	b.ReportMetric(float64(frontier), "frontierPts")
}

// BenchmarkParetoTwoTier screens the same 100-point space analytically
// and verifies only the survivors cycle-accurately. The verified
// frontier is identical to the exhaustive one (asserted by
// TestTwoTierMatchesExhaustiveFrontier); ns/op against
// BenchmarkParetoExhaustive is the two-tier speedup (>= 10x budgeted).
func BenchmarkParetoTwoTier(b *testing.B) {
	d := core.NewDesign()
	var survivors int
	for i := 0; i < b.N; i++ {
		run, err := d.ExploreParetoCtx(context.Background(), twoTierBenchSpace(), core.ParetoOpts{TwoTier: true})
		if err != nil {
			b.Fatal(err)
		}
		survivors = run.Survivors
	}
	b.ReportMetric(float64(survivors), "survivors")
}

// BenchmarkWorkloadTransformerBlock compiles the built-in transformer
// operator graph (17 ops: GEMMs, attention-gather, all-reduce, MoE
// dispatch, elementwise, collectives) onto a 4x4 machine with each NoC
// topology, runs it end to end, and verifies every operator's output
// against the host reference. machineCycles is the end-to-end graph
// latency; critPathCycles is the dependency-chain lower bound.
func BenchmarkWorkloadTransformerBlock(b *testing.B) {
	g := workload.TransformerBlock(0, 0, 0)
	want, err := workload.Reference(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, topo := range noc.TopologyNames() {
		b.Run(topo, func(b *testing.B) {
			var rep *workload.WorkloadReport
			for i := 0; i < b.N; i++ {
				m, err := workload.BuildMachine(4, topo)
				if err != nil {
					b.Fatal(err)
				}
				outputs, r, err := workload.Run(m, g, workload.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !r.Completed {
					b.Fatalf("graph failed at op %q", r.FailedOp)
				}
				if bad := workload.CompareOutputs(outputs, want); len(bad) > 0 {
					b.Fatalf("ops diverged from reference: %v", bad)
				}
				rep = r
				m.Close()
			}
			b.ReportMetric(float64(rep.TotalCycles), "machineCycles")
			b.ReportMetric(float64(rep.CriticalPathCycles), "critPathCycles")
			b.ReportMetric(float64(rep.RemoteOps), "remoteOps")
		})
	}
}
